// Package parsgd is the public API of the study "Stochastic Gradient
// Descent on Modern Hardware: Multi-core CPU or GPU? Synchronous or
// Asynchronous?" (IPDPS 2019) reproduced in pure Go.
//
// It exposes, as one façade, the pieces a downstream user needs:
//
//   - Datasets: the five Table I datasets as deterministic synthetic
//     equivalents (GenerateDataset, DatasetNames), LIBSVM IO for the real
//     files, and the paper's MLP feature-grouping transform.
//   - Tasks: logistic regression, linear SVM and fully-connected MLPs with
//     per-example and batch gradients (NewLR, NewSVM, NewMLP).
//   - Engines: every point of the paper's configuration cube — synchronous
//     SGD over a device-independent linear-algebra backend (NewSyncEngine
//     with CPUBackend/GPUBackend), Hogwild on goroutines (NewHogwildEngine),
//     Hogwild on the simulated SIMT GPU (NewGPUHogwildEngine), and Hogbatch
//     for MLP (NewHogbatchEngine).
//   - Measurement: RunToConvergence drives any engine against the paper's
//     methodology (tuned steps, identical initialisation, 10/5/2/1%
//     thresholds) and the bench.Harness regenerates every table and figure.
//
// The GPU is a simulator: update semantics (warp lockstep, write conflicts,
// bounded occupancy) execute functionally, so statistical efficiency is a
// real measurement; kernel time comes from a coalescing/divergence cost
// model of the paper's Tesla K80. CPU timing is priced against the paper's
// dual-socket Xeon by an analytic NUMA model while the Hogwild races run for
// real on goroutines. See DESIGN.md for the substitution rationale.
package parsgd

import (
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/hw"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/numa"
)

// Datasets.
type (
	// Dataset is a labelled training set (CSR features, ±1 labels).
	Dataset = data.Dataset
	// DatasetSpec describes a registry dataset (Table I statistics).
	DatasetSpec = data.Spec
	// DatasetStats summarises a dataset like the paper's Table I.
	DatasetStats = data.Stats
)

// DatasetNames lists the five study datasets in Table I order.
func DatasetNames() []string { return data.Names() }

// LookupDataset returns the registry spec for a dataset name.
func LookupDataset(name string) (DatasetSpec, error) { return data.Lookup(name) }

// GenerateDataset builds the deterministic synthetic equivalent of a spec;
// use spec.Scaled to reduce the example count.
func GenerateDataset(spec DatasetSpec) *Dataset { return data.Generate(spec) }

// GroupFeatures applies the paper's MLP preprocessing (average groups of
// consecutive features down to `inputs` columns).
func GroupFeatures(d *Dataset, inputs int) (*Dataset, error) {
	return data.GroupFeatures(d, inputs)
}

// DatasetStatsOf computes Table I-style statistics.
func DatasetStatsOf(d *Dataset) DatasetStats { return data.ComputeStats(d) }

// Models.
type (
	// Model is a trainable task (see NewLR, NewSVM, NewMLP).
	Model = model.Model
	// BatchModel adds the synchronous batch-gradient formulation.
	BatchModel = model.BatchModel
	// MLP is the fully-connected network task.
	MLP = model.MLP
)

// NewLR returns a logistic-regression task over dim features.
func NewLR(dim int) BatchModel { return model.NewLR(dim) }

// NewSVM returns a hinge-loss SVM task over dim features.
func NewSVM(dim int) BatchModel { return model.NewSVM(dim) }

// NewMLP returns a fully-connected MLP task with the given layer widths
// (e.g. 54-10-5-2 as []int{54, 10, 5, 2}).
func NewMLP(widths []int) *MLP { return model.NewMLP(widths) }

// Hardware and backends.
type (
	// CPUBackend prices operations against the paper's dual-socket Xeon.
	CPUBackend = linalg.CPUBackend
	// GPUBackend prices operations against the simulated Tesla K80.
	GPUBackend = linalg.GPUBackend
	// Backend is the device-independent linear-algebra contract.
	Backend = linalg.Backend
	// GPUDevice is the simulated SIMT device.
	GPUDevice = gpusim.Device
	// NUMAModel is the CPU cost model.
	NUMAModel = numa.Model
)

// NewCPUBackend returns a CPU backend modeling `threads` hardware threads
// (1 = the paper's cpu-seq, 56 = cpu-par).
func NewCPUBackend(threads int) *CPUBackend { return linalg.NewCPU(threads) }

// NewGPUBackend returns a backend for the paper's Tesla K80.
func NewGPUBackend() *GPUBackend { return linalg.NewK80() }

// K80 returns the simulated device itself (kernel costs, async execution).
func K80() *GPUDevice { return gpusim.K80() }

// PaperCPU returns the hardware description of the study's NUMA machine.
func PaperCPU() *hw.CPUSpec { return hw.PaperCPU() }

// PaperGPU returns the hardware description of the study's GPU.
func PaperGPU() *hw.GPUSpec { return hw.PaperGPU() }

// Engines and the convergence driver.
type (
	// Engine advances a model by one optimization epoch.
	Engine = core.Engine
	// SyncEngine is synchronous (batch) SGD on a backend.
	SyncEngine = core.SyncEngine
	// HogwildEngine is asynchronous SGD on CPU threads.
	HogwildEngine = core.HogwildEngine
	// GPUHogwildEngine is asynchronous SGD on simulated GPU warps.
	GPUHogwildEngine = core.GPUHogwildEngine
	// HogbatchEngine is the mini-batch asynchronous engine used for MLP.
	HogbatchEngine = core.HogbatchEngine
	// RunResult reports a convergence drive.
	RunResult = core.RunResult
	// DriverOpts parameterises RunToConvergence.
	DriverOpts = core.DriverOpts
	// LossPoint is one sample of a convergence curve.
	LossPoint = core.LossPoint
)

// Hogbatch execution flavours.
const (
	HogbatchSeq    = core.HogbatchSeq
	HogbatchParCPU = core.HogbatchParCPU
	HogbatchGPU    = core.HogbatchGPU
)

// NewSyncEngine builds the synchronous configuration on any backend.
func NewSyncEngine(b Backend, m BatchModel, ds *Dataset, step float64) *SyncEngine {
	return core.NewSync(b, m, ds, step)
}

// NewHogwildEngine builds CPU Hogwild with `threads` modeled threads.
func NewHogwildEngine(m Model, ds *Dataset, step float64, threads int) *HogwildEngine {
	return core.NewHogwild(m, ds, step, threads)
}

// NewGPUHogwildEngine builds the simulated-GPU asynchronous configuration.
func NewGPUHogwildEngine(m Model, ds *Dataset, step float64) *GPUHogwildEngine {
	return core.NewGPUHogwild(m, ds, step)
}

// NewHogbatchEngine builds the MLP asynchronous configuration.
func NewHogbatchEngine(m BatchModel, ds *Dataset, step float64, mode core.HogbatchMode) *HogbatchEngine {
	return core.NewHogbatch(m, ds, step, mode)
}

// RunToConvergence drives an engine with the paper's methodology.
func RunToConvergence(e Engine, m Model, ds *Dataset, w []float64, opts DriverOpts) RunResult {
	return core.RunToConvergence(e, m, ds, w, opts)
}

// TuneStep grid-searches the step size like the paper (powers of ten).
func TuneStep(mk func(step float64) Engine, m Model, ds *Dataset, init []float64, probeEpochs int) float64 {
	return core.TuneStep(mk, m, ds, init, probeEpochs)
}

// EstimateOptLoss approximates the reference optimal loss.
func EstimateOptLoss(m Model, ds *Dataset, epochs int) float64 {
	return core.EstimateOptLoss(m, ds, epochs)
}

// MeanLoss evaluates the mean loss of a model state over a dataset.
func MeanLoss(m Model, w []float64, ds *Dataset) float64 {
	return model.MeanLoss(m, w, ds)
}

// Experiment harness.
type (
	// Harness regenerates the paper's tables and figures.
	Harness = bench.Harness
	// HarnessOptions configures a harness run.
	HarnessOptions = bench.Options
)

// NewHarness builds the experiment harness.
func NewHarness(opts HarnessOptions) *Harness { return bench.New(opts) }
