package parsgd

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/linalg"
	"repro/internal/mf"
	"repro/internal/model"
)

// Table/figure benchmarks: each regenerates one experiment of the paper at a
// reduced dataset scale (the modeled times inside are priced at full scale)
// and reports the headline quantity as a custom metric. Run a single
// experiment with e.g.
//
//	go test -bench BenchmarkTable2SyncSGD -benchtime 1x
//
// The cmd/sgdbench binary prints the full paper-style rows.

// benchOpts is the scale used by the experiment benchmarks: large enough for
// the shapes to hold, small enough for a laptop run.
func benchOpts(tasks, datasets []string) bench.Options {
	return bench.Options{
		MaxN:          800,
		Datasets:      datasets,
		Tasks:         tasks,
		MaxEpochs:     100,
		SyncMaxEpochs: 900,
		ProbeEpochs:   4,
		OptEpochs:     20,
	}
}

func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchOpts(nil, nil))
		rows := h.Table1()
		if len(rows) != 5 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

func BenchmarkTable2SyncSGD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchOpts([]string{"lr"}, []string{"covtype", "w8a", "news"}))
		rows := h.Table2()
		var maxSpeedup float64
		for _, r := range rows {
			if r.SpeedupParGPU > maxSpeedup {
				maxSpeedup = r.SpeedupParGPU
			}
		}
		b.ReportMetric(maxSpeedup, "max-par/gpu-speedup")
	}
}

func BenchmarkTable3AsyncSGD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchOpts([]string{"lr"}, []string{"covtype", "news"}))
		rows := h.Table3()
		for _, r := range rows {
			if r.Dataset == "news" {
				b.ReportMetric(r.SpeedupSeqPar, "news-seq/par-speedup")
			}
		}
	}
}

func BenchmarkTable3AsyncMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchOpts([]string{"mlp"}, []string{"w8a"}))
		rows := h.Table3()
		for _, r := range rows {
			b.ReportMetric(r.SpeedupGPUPar, "gpu/par-iter-ratio")
		}
	}
}

func BenchmarkFig6MLPScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchOpts([]string{"mlp"}, []string{"real-sim"})
		opts.MaxN = 256
		h := bench.New(opts)
		points := h.Fig6()
		b.ReportMetric(points[len(points)-1].SpeedupSeqPar, "largest-net-seq/par")
	}
}

func BenchmarkFig7SyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchOpts([]string{"lr"}, []string{"w8a", "covtype"}))
		curves := h.Fig7()
		var asyncWins float64
		for _, c := range curves {
			if c.Winner == "async/cpu" {
				asyncWins++
			}
		}
		b.ReportMetric(asyncWins, "async-wins")
	}
}

func BenchmarkFig8SpeedupLRSVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchOpts([]string{"lr", "svm"}, []string{"rcv1"}))
		rows := h.Fig8()
		b.ReportMetric(rows[0].OursSync/rows[0].Framework, "ours-vs-bidmach")
	}
}

func BenchmarkFig9SpeedupMLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := bench.New(benchOpts([]string{"mlp"}, []string{"real-sim"}))
		rows := h.Fig9()
		b.ReportMetric(rows[0].OursSync/rows[0].Framework, "ours-vs-tf")
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationWarpShuffle quantifies the warp-shuffle conflict
// reduction (paper Section IV-B) on dense data.
func BenchmarkAblationWarpShuffle(b *testing.B) {
	spec, _ := data.Lookup("covtype")
	ds := data.Generate(spec.Scaled(1000.0 / float64(spec.N)))
	m := model.NewLR(ds.D())
	for i := 0; i < b.N; i++ {
		plain := core.NewGPUHogwild(m, ds, 0.1)
		comb := core.NewGPUHogwild(m, ds, 0.1)
		comb.Combine = true
		w1 := m.InitParams(1)
		w2 := m.InitParams(1)
		plain.RunEpoch(w1)
		comb.RunEpoch(w2)
		ps, cs := plain.LastStats(), comb.LastStats()
		b.ReportMetric(float64(ps.LostIntra+ps.LostInter)/float64(ps.Updates)*100, "plain-lost-%")
		b.ReportMetric(float64(cs.LostInter)/float64(cs.Updates)*100, "shuffle-lost-%")
	}
}

// BenchmarkAblationPerNode compares flat 56-thread Hogwild with the
// DimmWitted PerNode replication on dense data (modeled iteration time).
func BenchmarkAblationPerNode(b *testing.B) {
	spec, _ := data.Lookup("covtype")
	ds := data.Generate(spec.Scaled(1200.0 / float64(spec.N)))
	m := model.NewLR(ds.D())
	for i := 0; i < b.N; i++ {
		flat := core.NewHogwild(m, ds, 0.01, 56)
		per := core.NewReplicatedHogwild(m, ds, 0.01)
		w1 := m.InitParams(1)
		w2 := m.InitParams(1)
		tf := flat.RunEpoch(w1)
		tp := per.RunEpoch(w2)
		b.ReportMetric(tf/tp, "pernode-iter-speedup")
	}
}

// BenchmarkAblationQuantized compares raw against Buckwild-style quantized
// Hogwild in reached loss after a fixed budget.
func BenchmarkAblationQuantized(b *testing.B) {
	spec, _ := data.Lookup("w8a")
	ds := data.Generate(spec.Scaled(800.0 / float64(spec.N)))
	m := model.NewLR(ds.D())
	for i := 0; i < b.N; i++ {
		raw := core.NewHogwild(m, ds, 0.5, 1)
		qnt := core.NewHogwild(m, ds, 0.5, 1)
		qnt.Updater = model.QuantizedUpdater{FracBits: 12}
		w1 := m.InitParams(1)
		w2 := m.InitParams(1)
		for ep := 0; ep < 30; ep++ {
			raw.RunEpoch(w1)
			qnt.RunEpoch(w2)
		}
		b.ReportMetric(model.MeanLoss(m, w2, ds)-model.MeanLoss(m, w1, ds), "quantized-loss-gap")
	}
}

// BenchmarkAblationSharedMemoryGPU compares the flat asynchronous GPU kernel
// with the extended-version shared-memory replica variant on a small model.
func BenchmarkAblationSharedMemoryGPU(b *testing.B) {
	spec, _ := data.Lookup("w8a")
	ds := data.Generate(spec.Scaled(1000.0 / float64(spec.N)))
	m := model.NewLR(ds.D())
	for i := 0; i < b.N; i++ {
		flat := core.NewGPUHogwild(m, ds, 0.5)
		shared := core.NewGPUHogwild(m, ds, 0.5)
		shared.SharedMemory = true
		w1 := m.InitParams(1)
		w2 := m.InitParams(1)
		tf := flat.RunEpoch(w1)
		ts := shared.RunEpoch(w2)
		b.ReportMetric(tf/ts, "sharedmem-iter-speedup")
	}
}

// BenchmarkAblationBatchSize sweeps the Hogbatch mini-batch size (the
// paper fixes 512) and reports the modeled iteration-time spread.
func BenchmarkAblationBatchSize(b *testing.B) {
	spec, _ := data.Lookup("w8a")
	ds := data.Generate(spec.Scaled(1500.0 / float64(spec.N)))
	mds, err := data.ForMLP(ds, spec)
	if err != nil {
		b.Fatal(err)
	}
	m := model.NewMLPFor(spec)
	for i := 0; i < b.N; i++ {
		var t128, t512 float64
		for _, batch := range []int{128, 512} {
			e := core.NewHogbatch(m, mds, 0.1, core.HogbatchGPU)
			e.Batch = batch
			w := m.InitParams(1)
			sec := e.RunEpoch(w)
			if batch == 128 {
				t128 = sec
			} else {
				t512 = sec
			}
		}
		// Smaller batches mean more per-batch dispatch per epoch.
		b.ReportMetric(t128/t512, "batch128-vs-512-iter-ratio")
	}
}

// BenchmarkAblationWarpLayout compares the two asynchronous GPU kernel
// layouts (one example per lane vs one example per warp) in conflict rate
// and modeled iteration time on dense data.
func BenchmarkAblationWarpLayout(b *testing.B) {
	spec, _ := data.Lookup("covtype")
	ds := data.Generate(spec.Scaled(1000.0 / float64(spec.N)))
	m := model.NewLR(ds.D())
	for i := 0; i < b.N; i++ {
		lanePer := core.NewGPUHogwild(m, ds, 0.1)
		warpPer := core.NewGPUHogwild(m, ds, 0.1)
		warpPer.WarpPerExample = true
		w1 := m.InitParams(1)
		w2 := m.InitParams(1)
		t1 := lanePer.RunEpoch(w1)
		t2 := warpPer.RunEpoch(w2)
		l1 := lanePer.LastStats()
		l2 := warpPer.LastStats()
		b.ReportMetric(float64(l1.LostIntra+l1.LostInter)/float64(l1.Updates)*100, "lane-lost-%")
		b.ReportMetric(float64(l2.LostInter)/float64(l2.Updates)*100, "warp-lost-%")
		b.ReportMetric(t2/t1, "warp-vs-lane-iter")
	}
}

// BenchmarkAblationCyclades compares conflict-free (Cyclades) scheduling
// against racy Hogwild on sparse data: near-Hogwild hardware efficiency with
// sequential-equivalent statistics.
func BenchmarkAblationCyclades(b *testing.B) {
	spec, _ := data.Lookup("news")
	ds := data.Generate(spec.Scaled(800.0 / float64(spec.N)))
	m := model.NewLR(ds.D())
	for i := 0; i < b.N; i++ {
		cyc := core.NewCyclades(m, ds, 0.1, 56)
		hog := core.NewHogwild(m, ds, 0.1, 56)
		w1 := m.InitParams(1)
		w2 := m.InitParams(1)
		tc := cyc.RunEpoch(w1)
		th := hog.RunEpoch(w2)
		b.ReportMetric(tc/th, "cyclades-vs-hogwild-iter")
		b.ReportMetric(cyc.Stats().MeanBatchLen, "mean-batch-len")
	}
}

// BenchmarkExtensionMatrixFactorization trains the future-work MF model with
// Hogwild and reports the reached MSE after a fixed budget.
func BenchmarkExtensionMatrixFactorization(b *testing.B) {
	spec := mf.NetflixLike(300, 150, 9000)
	ds := mf.NewRatingsDataset(spec)
	task := mf.NewMF(spec.Users, spec.Items, 8)
	for i := 0; i < b.N; i++ {
		e := core.NewHogwild(task, ds, 0.05, 8)
		w := task.InitParams(1)
		for ep := 0; ep < 30; ep++ {
			e.RunEpoch(w)
		}
		b.ReportMetric(model.MeanLoss(task, w, ds), "mf-final-mse")
	}
}

// Kernel micro-benchmarks (real wall-clock of the Go implementations).

func BenchmarkKernelSpMV(b *testing.B) {
	spec, _ := data.Lookup("rcv1")
	ds := data.Generate(spec.Scaled(2000.0 / float64(spec.N)))
	x := make([]float64, ds.D())
	y := make([]float64, ds.N())
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds.X.MulVec(x, y)
	}
}

func BenchmarkKernelHogwildEpoch(b *testing.B) {
	spec, _ := data.Lookup("news")
	ds := data.Generate(spec.Scaled(1000.0 / float64(spec.N)))
	m := model.NewLR(ds.D())
	e := core.NewHogwild(m, ds, 0.1, 1)
	w := m.InitParams(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunEpoch(w)
	}
}

func BenchmarkKernelGPUAsyncEpoch(b *testing.B) {
	spec, _ := data.Lookup("w8a")
	ds := data.Generate(spec.Scaled(1000.0 / float64(spec.N)))
	m := model.NewLR(ds.D())
	e := core.NewGPUHogwild(m, ds, 0.1)
	w := m.InitParams(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunEpoch(w)
	}
}

func BenchmarkKernelMLPBatchGrad(b *testing.B) {
	spec, _ := data.Lookup("w8a")
	ds := data.Generate(spec.Scaled(1000.0 / float64(spec.N)))
	mds, err := data.ForMLP(ds, spec)
	if err != nil {
		b.Fatal(err)
	}
	m := model.NewMLPFor(spec)
	back := linalg.NewCPU(1)
	w := m.InitParams(1)
	g := make([]float64, m.NumParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BatchGrad(back, w, mds, nil, g)
	}
}

func BenchmarkKernelCoalescingAnalysis(b *testing.B) {
	spec, _ := data.Lookup("real-sim")
	ds := data.Generate(spec.Scaled(2000.0 / float64(spec.N)))
	dev := gpusim.K80()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dev.CostSpMV(ds.X)
	}
}
