#!/bin/sh
# span_smoke.sh — end-to-end gate for request tracing and SLO burn rates
# (`make span-smoke`). Two phases against a real sgdserve process:
#
#   1. baseline: healthy server under load. The SLO must stay quiet and
#      sgdspan must attribute >= 95% of the p99 tail to named spans.
#   2. storm: the same server under the storm fault plan (10x straggler +
#      1% injected drops). The errors@99.9 objective burns its budget ~10x
#      faster than allowed, so the multi-window alert must fire, and the
#      exported spans must carry the injected faults.
#
# Both assertions run through the shipped binaries (sgdload -expect-alert,
# sgdspan -min-attrib), so this exercises the same path an operator would.
set -eu

GO=${GO:-go}
OUT=${SPAN_SMOKE_DIR:-$(mktemp -d -t span-smoke.XXXXXX)}
mkdir -p "$OUT"
SLO_SPEC='latency<=1s@99,errors@99.9'

echo "span-smoke: artifacts in $OUT"
"$GO" build -o "$OUT/sgdserve" ./cmd/sgdserve
"$GO" build -o "$OUT/sgdload" ./cmd/sgdload
"$GO" build -o "$OUT/sgdspan" ./cmd/sgdspan

# phase NAME EXPECT [extra sgdserve flags...]: boot an instrumented server,
# drive 2s of closed-loop load with trace IDs, assert the /slo state, shut
# the server down cleanly (SIGINT) so the span file is flushed.
phase() {
	name=$1
	expect=$2
	shift 2
	log="$OUT/$name.log"
	"$OUT/sgdserve" -addr 127.0.0.1:0 -maxn 500 -pretrain 2 \
		-spans "$OUT/$name-spans.jsonl" -slow 0 \
		-slo "$SLO_SPEC" -slo-fast 2s -burn 2 \
		-serve-for 60s "$@" >"$OUT/$name.out" 2>"$log" &
	pid=$!
	addr=''
	i=0
	while [ $i -lt 100 ]; do
		addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log" | head -n 1)
		[ -n "$addr" ] && break
		sleep 0.1
		i=$((i + 1))
	done
	if [ -z "$addr" ]; then
		echo "span-smoke: $name server never listened" >&2
		cat "$log" >&2
		kill "$pid" 2>/dev/null || true
		exit 1
	fi
	"$OUT/sgdload" -target "http://$addr" -conc 4 -duration 2s -maxn 500 \
		-out "$OUT/$name-report.json" -expect-alert "$expect"
	kill -s INT "$pid"
	wait "$pid"
}

echo "span-smoke: phase 1/2 baseline (expect quiet SLO, attributable tail)"
phase baseline quiet
"$OUT/sgdspan" -min-attrib 0.95 -worst 1 "$OUT/baseline-spans.jsonl"

echo "span-smoke: phase 2/2 storm (expect SLO alert to fire)"
phase storm fire -chaos-plan storm
# The storm export must contain error-kept traces carrying injected faults.
"$OUT/sgdspan" -keep error "$OUT/storm-spans.jsonl" >/dev/null

echo "span-smoke: ok"
