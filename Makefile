GO ?= go

.PHONY: build test check bench bench-paper

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: static analysis over everything, plus the
# race detector on the concurrency-heavy packages (the Hogwild engines race
# goroutines on a shared model by design; the observability recorders must
# stay safe under that).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/core ./internal/obs

# bench measures the host-side epoch engineering (pool vs spawn dispatch,
# nnz-balanced vs even sparse partitioning, steady-state allocation proofs)
# and writes BENCH_epoch.json. Pass BENCH_FLAGS=-short for the CI-sized run.
bench:
	$(GO) run ./cmd/epochbench $(BENCH_FLAGS) -out BENCH_epoch.json

# bench-paper regenerates the paper's tables at a small scale with a trace.
bench-paper:
	$(GO) run ./cmd/sgdbench -experiment table2,table3 -maxn 1000 -trace run.jsonl -obs
