GO ?= go

# bench output path: CI overrides this to a temp location so a bench run
# never dirties the working tree (the committed BENCH_baseline.json is the
# reference, not a file to overwrite).
BENCH_OUT ?= BENCH_epoch.json

.PHONY: build test check lint cover bench bench-compare bench-paper gate gate-update chaos fuzz mdcheck serve-smoke quant-smoke span-smoke ps-smoke localsgd-smoke hetero-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: static analysis over everything, plus the
# race detector on the concurrency-heavy packages (the Hogwild engines race
# goroutines on a shared model by design; the observability recorders must
# stay safe under that).
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/core ./internal/obs ./internal/serve ./internal/span

# lint runs the static analyzers beyond vet. staticcheck and govulncheck
# are optional locally (this module is stdlib-only and builds offline); CI
# installs both. The guards keep the target usable on a hermetic machine.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# cover produces the coverage profile. The floor is soft: the number is
# reported (and warned about in CI below 60%), never failed on.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1

# gate is the convergence regression gate: re-run the full 14-config matrix
# (the paper's 8-way cube, the ps tiers, the Local-SGD tiers, the
# heterogeneous CPU+GPU tiers) at seeded gate scale and compare against the
# committed goldens/envelopes.
# After an intentional behaviour change, regenerate with gate-update and
# commit the new testdata.
gate:
	$(GO) run ./cmd/sgdgate compare -report gate-report.json

gate-update:
	$(GO) run ./cmd/sgdgate compare -update

# bench measures the host-side epoch engineering (pool vs spawn dispatch,
# nnz-balanced vs even sparse partitioning, steady-state allocation proofs)
# and writes $(BENCH_OUT). Pass BENCH_FLAGS=-short for the CI-sized run.
bench:
	$(GO) run ./cmd/epochbench $(BENCH_FLAGS) -out $(BENCH_OUT)

# bench-compare is the noise-aware perf gate: a fresh bench run written to a
# temp path and diffed against the committed baseline (allocation counts
# exact, dimensionless invariants absolute, wall-clock ratios only between
# comparable runs).
bench-compare:
	$(GO) run ./cmd/epochbench $(BENCH_FLAGS) \
		-out $${BENCH_TMP:-$$(mktemp -t BENCH_new.XXXXXX.json)} \
		-compare BENCH_baseline.json

# bench-paper regenerates the paper's tables at a small scale with a trace.
bench-paper:
	$(GO) run ./cmd/sgdbench -experiment table2,table3 -maxn 1000 -trace run.jsonl -obs

# chaos runs the 12-config ladder (the paper's 8 engines plus the Local-SGD
# and heterogeneous CPU+GPU tiers) under the storm fault plan on the
# virtual-time scheduler and writes the degradation report: the paper's
# sync-fragile/async-robust contrast as a JSON artifact. Pick other plans
# with CHAOS_PLAN (see `go run ./cmd/sgdchaos -list`).
CHAOS_PLAN ?= storm
chaos:
	$(GO) run ./cmd/sgdchaos -plan $(CHAOS_PLAN) -out chaos-report.json

# mdcheck verifies every relative link and heading anchor in the repo's
# markdown docs (offline; external URLs are not fetched). Non-blocking in
# CI's lint job, but cheap enough to run before any docs commit.
mdcheck:
	$(GO) run ./cmd/mdcheck .

# serve-smoke is the serving A/B gate: train a small LR in-process, drive
# the production serving stack batched (MaxBatch=64) and unbatched
# (MaxBatch=1) at equal worker count, and fail unless micro-batching buys
# at least 2x throughput. The report goes to a temp path so the run never
# dirties the working tree.
serve-smoke:
	$(GO) run ./cmd/sgdload -inproc -duration 2s -conc 64 -check -min-speedup 2 \
		-out $${SERVE_TMP:-$$(mktemp -t serve-smoke.XXXXXX.json)}

# quant-smoke is the int8 serving gate: drive the same serving stack float
# then quantised, probe every row's score against the analytic error bound,
# and fail if the quantised path costs throughput (serving requests are
# dispatch-dominated, so the floor is "no slower than ~0.8x float"; the
# >= 1.5x kernel-level win is gated separately via bench-compare).
quant-smoke:
	$(GO) run ./cmd/sgdload -quant-ab -duration 2s -conc 64 -check -expect-speedup 0.8 \
		-out $${QUANT_TMP:-$$(mktemp -t quant-smoke.XXXXXX.json)}

# span-smoke is the tracing/SLO gate: a healthy sgdserve must keep its SLO
# quiet with >= 95% of the p99 tail attributed to named spans, and the same
# server under the storm fault plan must fire the multi-window burn-rate
# alert. See scripts/span_smoke.sh; artifacts land in SPAN_SMOKE_DIR (or a
# temp dir) so the tree stays clean.
span-smoke:
	GO=$(GO) sh scripts/span_smoke.sh

# ps-smoke is the parameter-server degradation gate: run the sharded tier
# (ps-sync and ps-async) under the storm fault plan on the virtual-time
# scheduler and fail unless the barriered tier degrades at least 2x more
# than apply-on-arrival — the paper's cluster contrast as a CI assertion.
# The report goes to a temp path so the run never dirties the tree.
ps-smoke:
	$(GO) run ./cmd/sgdps -plan storm -assert-contrast 2 \
		-out $${PS_TMP:-$$(mktemp -t ps-report.XXXXXX.json)}

# localsgd-smoke is the Local-SGD convergence gate: re-run only the two
# local configs (local-sync against its 1e-9 golden, local-async against its
# p10-p90 envelope) and fail on any drift. The report goes to a temp path so
# the run never dirties the tree.
localsgd-smoke:
	$(GO) run ./cmd/sgdgate compare -only local- \
		-report $${LOCALSGD_TMP:-$$(mktemp -t localsgd-gate.XXXXXX.json)}

# hetero-smoke is the heterogeneous CPU+GPU convergence gate: re-run only the
# two hetero configs (hetero-sync against its 1e-9 golden, hetero-async
# against its p10-p90 envelope) and fail on any drift. The report goes to a
# temp path so the run never dirties the tree.
hetero-smoke:
	$(GO) run ./cmd/sgdgate compare -only hetero- \
		-report $${HETERO_TMP:-$$(mktemp -t hetero-gate.XXXXXX.json)}

# fuzz exercises the input-boundary fuzz targets for a bounded time each.
# The minimize budget is capped: on a small box, minimizing a multi-KB
# interesting input can otherwise consume the entire fuzz budget.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzReadLIBSVM -fuzztime $(FUZZTIME) -fuzzminimizetime 5s ./internal/data
	$(GO) test -fuzz FuzzCSRBuilder -fuzztime $(FUZZTIME) -fuzzminimizetime 5s ./internal/sparse
