package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/regress"
)

// trimmed cuts the ps matrix to a scale that runs in well under a second.
var trimmed = []string{"-maxn", "200", "-epochs", "8"}

func TestRunStormReportAndContrastGate(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-plan", "storm", "-seed", "1", "-assert-contrast", "2"}, trimmed...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var rep regress.DegradationReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v", err)
	}
	if rep.Plan.Name != "storm" {
		t.Errorf("report plan %q, want storm", rep.Plan.Name)
	}
	if len(rep.Configs) != 2 {
		t.Fatalf("got %d configs, want ps-sync + ps-async", len(rep.Configs))
	}
	if !rep.AsyncAllReached {
		t.Error("ps-async missed its threshold under storm at test scale")
	}
	// The contrast the command exists to show: the barrier waits out the
	// 10x straggler on every round while dynamic claiming absorbs it.
	if rep.MinSyncSlowdown >= 0 && rep.MinSyncSlowdown < 2*rep.MaxAsyncSlowdown {
		t.Errorf("sync slowdown %.2fx < 2x async %.2fx", rep.MinSyncSlowdown, rep.MaxAsyncSlowdown)
	}
}

func TestContrastAssertionNeedsBothStrategies(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-plan", "storm", "-strategies", "ps-async", "-assert-contrast", "2"}, trimmed...)
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (assertion cannot hold without a ps-sync config)", code)
	}
	if !strings.Contains(stderr.String(), "contrast assertion FAILED") {
		t.Errorf("stderr missing assertion failure: %s", stderr.String())
	}
}

func TestAssertContrast(t *testing.T) {
	mk := func(minSync, maxAsync float64, reached bool) regress.DegradationReport {
		return regress.DegradationReport{
			Configs: []regress.ChaosConfigReport{
				{Strategy: "ps-sync"}, {Strategy: "ps-async"},
			},
			MinSyncSlowdown:  minSync,
			MaxAsyncSlowdown: maxAsync,
			AsyncAllReached:  reached,
		}
	}
	if err := assertContrast(mk(10, 1.6, true), 2); err != nil {
		t.Errorf("10x vs 1.6x failed a 2x assertion: %v", err)
	}
	if err := assertContrast(mk(-1, 1.6, true), 2); err != nil {
		t.Errorf("unreached sync (infinite degradation) failed the assertion: %v", err)
	}
	if err := assertContrast(mk(2.5, 1.6, true), 2); err == nil {
		t.Error("2.5x vs 1.6x passed a 2x assertion")
	}
	if err := assertContrast(mk(10, 1.6, false), 2); err == nil {
		t.Error("assertion passed with a ps-async config missing its threshold")
	}
}

func TestRunWritesFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	out := filepath.Join(t.TempDir(), "report.json")
	args := append([]string{"-plan", "straggler", "-out", out, "-strategies", "ps-async"}, trimmed...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty with -out: %q", stdout.String())
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep regress.DegradationReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Configs) != 1 || rep.Configs[0].Strategy != "ps-async" {
		t.Errorf("unexpected configs in file report: %+v", rep.Configs)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"storm", "straggler", "drops"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list output missing plan %q:\n%s", want, stdout.String())
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-plan", "nosuchplan"},
		{"-intensities", "1,bogus"},
		{"-strategies", "sync"}, // in-process strategy: not in the ps matrix
		{"-badflag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}
