// Command sgdps runs the sharded parameter-server tier under a named fault
// plan and emits a JSON degradation report: for the barriered (ps-sync) and
// apply-on-arrival (ps-async) cluster configurations, the healthy
// time-to-threshold and how much it stretches when the transport carries a
// straggler, drops or duplicates pushes, or partitions a worker for whole
// rounds. It is cmd/sgdchaos lifted across the transport: the same
// sync-fragile/async-robust contrast, measured where the paper's cluster
// argument lives.
//
// Usage:
//
//	sgdps [-plan storm] [-seed 1] [-seq] [-deadline 0] [-tol 0.1]
//	      [-intensities 0,0.5,1] [-out report.json]
//	      [-strategies ps-sync,ps-async] [-maxn 0] [-epochs 0]
//	      [-workers 0] [-shards 0] [-assert-contrast 0]
//	sgdps -list
//
// -assert-contrast R turns the report into a gate: the run fails (exit 1)
// unless every ps-async config reaches its loss threshold under the nominal
// plan and the mildest ps-sync degradation is at least R times the worst
// ps-async one (an unreached ps-sync threshold counts as infinite
// degradation). CI runs `sgdps -plan storm -assert-contrast 2`.
//
// Exit status: 0 report written (and any assertion held), 1 a run or the
// contrast assertion failed, 2 usage error — including a filter that
// matches no configuration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/regress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgdps", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		planName    = fs.String("plan", "storm", "fault plan name (-list to enumerate)")
		list        = fs.Bool("list", false, "list the named fault plans and exit")
		seed        = fs.Int64("seed", 1, "seed for model init, shuffles, fault streams and the schedule")
		seq         = fs.Bool("seq", true, "run faulted epochs on the virtual-time sequential scheduler (exact replay)")
		deadline    = fs.Float64("deadline", 0, "ps-sync round deadline as a multiple of the healthy round (0 = classic BSP)")
		tol         = fs.Float64("tol", 0.1, "loss-gap tolerance defining each config's threshold")
		intensities = fs.String("intensities", "", "comma-separated plan intensity multipliers (default 1)")
		out         = fs.String("out", "-", "write the report JSON to this path (- = stdout)")
		strategies  = fs.String("strategies", "", "comma filter on ps strategies (ps-sync,ps-async)")
		maxN        = fs.Int("maxn", 0, "override per-config example count (0 = matrix default)")
		epochs      = fs.Int("epochs", 0, "override per-config epoch budget (0 = matrix default)")
		workers     = fs.Int("workers", 0, "override cluster worker count (0 = matrix default)")
		shards      = fs.Int("shards", 0, "override server shard count (0 = matrix default)")
		contrast    = fs.Float64("assert-contrast", 0, "fail unless min sync slowdown >= this multiple of max async slowdown (0 = report only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range chaos.PlanNames() {
			p, _ := chaos.Lookup(name)
			fmt.Fprintf(stdout, "%-10s %s\n", name, p)
		}
		return 0
	}
	plan, err := chaos.Lookup(*planName)
	if err != nil {
		fmt.Fprintf(stderr, "sgdps: %v (plans: %s)\n", err, strings.Join(chaos.PlanNames(), ", "))
		return 2
	}
	opts := regress.ChaosOpts{
		Seed:       *seed,
		Sequential: *seq,
		Deadline:   *deadline,
		Tol:        *tol,
	}
	if *intensities != "" {
		for _, f := range strings.Split(*intensities, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v < 0 {
				fmt.Fprintf(stderr, "sgdps: bad intensity %q\n", f)
				return 2
			}
			opts.Intensities = append(opts.Intensities, v)
		}
	}
	filter := regress.MatrixFilter{
		Strategies: *strategies,
		N:          *maxN,
		Epochs:     *epochs,
		Threads:    *workers,
	}
	configs, err := filter.Apply(regress.PSMatrix())
	if err != nil {
		fmt.Fprintf(stderr, "sgdps: %v\n", err)
		return 2
	}
	if *shards > 0 {
		for i := range configs {
			configs[i].Shards = *shards
		}
	}
	for _, c := range configs {
		fmt.Fprintf(stderr, "sgdps: %s under %s...\n", c.Fingerprint().Key(), plan)
	}
	rep, err := regress.Degradation(configs, plan, opts)
	if err != nil {
		fmt.Fprintf(stderr, "sgdps: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "sgdps: mildest ps-sync degradation %s, worst ps-async %.2fx, async all reached: %v\n",
		slowdownString(rep.MinSyncSlowdown), rep.MaxAsyncSlowdown, rep.AsyncAllReached)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "sgdps: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if *out == "-" || *out == "" {
		stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "sgdps: %v\n", err)
		return 1
	} else {
		fmt.Fprintf(stderr, "sgdps: wrote %s (%d configs)\n", *out, len(rep.Configs))
	}
	if *contrast > 0 {
		if err := assertContrast(rep, *contrast); err != nil {
			fmt.Fprintf(stderr, "sgdps: contrast assertion FAILED: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "sgdps: contrast assertion held (>= %gx)\n", *contrast)
	}
	return 0
}

// assertContrast checks the paper's cluster claim on the report: the
// barriered tier must degrade at least ratio times more than the
// apply-on-arrival tier, which itself must still reach its threshold.
func assertContrast(rep regress.DegradationReport, ratio float64) error {
	var haveSync, haveAsync bool
	for _, c := range rep.Configs {
		switch c.Strategy {
		case "ps-sync":
			haveSync = true
		case "ps-async":
			haveAsync = true
		}
	}
	if !haveSync || !haveAsync {
		return fmt.Errorf("report needs both ps-sync and ps-async configs (have sync=%v async=%v)", haveSync, haveAsync)
	}
	if !rep.AsyncAllReached {
		return fmt.Errorf("a ps-async config missed its loss threshold under the plan")
	}
	if rep.MaxAsyncSlowdown <= 0 {
		return fmt.Errorf("no ps-async slowdown recorded")
	}
	// MinSyncSlowdown < 0 means no sync run reached threshold at all:
	// infinite degradation, which trivially clears any finite ratio.
	if rep.MinSyncSlowdown >= 0 && rep.MinSyncSlowdown < ratio*rep.MaxAsyncSlowdown {
		return fmt.Errorf("min ps-sync slowdown %.2fx < %g x max ps-async %.2fx",
			rep.MinSyncSlowdown, ratio, rep.MaxAsyncSlowdown)
	}
	return nil
}

// slowdownString renders a degradation factor, spelling out the -1 sentinel
// (threshold never reached under the plan).
func slowdownString(s float64) string {
	if s < 0 {
		return "unreached"
	}
	return fmt.Sprintf("%.2fx", s)
}
