package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestRunOfflineServeForAndSnapshotRoundtrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", "127.0.0.1:0", "-maxn", "300", "-pretrain", "2",
		"-serve-for", "200ms", "-save-snapshot", snap, "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "served 0 requests") {
		t.Errorf("missing summary line:\n%s", stdout.String())
	}
	// The saved snapshot must serve again as-is.
	var stdout2, stderr2 bytes.Buffer
	code = run([]string{
		"-addr", "127.0.0.1:0", "-snapshot", snap,
		"-serve-for", "100ms", "-quiet",
	}, &stdout2, &stderr2)
	if code != 0 {
		t.Fatalf("serving saved snapshot: exit %d, stderr:\n%s", code, stderr2.String())
	}
}

func TestRunOnlineModeHotSwaps(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", "127.0.0.1:0", "-maxn", "300", "-train", "-eval-every", "2",
		"-serve-for", "300ms", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	m := regexp.MustCompile(`(\d+) snapshot swaps`).FindStringSubmatch(stdout.String())
	if m == nil {
		t.Fatalf("no swap count in summary:\n%s", stdout.String())
	}
	if swaps, _ := strconv.Atoi(m[1]); swaps < 2 {
		t.Errorf("online mode hot-swapped %d times, want >= 2 (initial + per-epoch):\n%s",
			swaps, stdout.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "tree"},
		{"-dataset", "nonesuch"},
		{"-chaos-plan", "nonesuch"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestRunSnapshotDimMismatch(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap.json")
	b, _ := json.Marshal(map[string]any{"model": "lr", "dim": 3, "weights": []float64{1, 2, 3}})
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-snapshot", snap, "-maxn", "300", "-quiet"}, &stdout, &stderr); code != 1 {
		t.Fatalf("mismatched snapshot: exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "weights") {
		t.Errorf("unhelpful error: %s", stderr.String())
	}
}
