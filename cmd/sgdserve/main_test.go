package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/span"
)

// syncBuf lets the test read run()'s output while run() is still writing
// from its own goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunOfflineServeForAndSnapshotRoundtrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", "127.0.0.1:0", "-maxn", "300", "-pretrain", "2",
		"-serve-for", "200ms", "-save-snapshot", snap, "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "served 0 requests") {
		t.Errorf("missing summary line:\n%s", stdout.String())
	}
	// The saved snapshot must serve again as-is.
	var stdout2, stderr2 bytes.Buffer
	code = run([]string{
		"-addr", "127.0.0.1:0", "-snapshot", snap,
		"-serve-for", "100ms", "-quiet",
	}, &stdout2, &stderr2)
	if code != 0 {
		t.Fatalf("serving saved snapshot: exit %d, stderr:\n%s", code, stderr2.String())
	}
}

func TestRunOnlineModeHotSwaps(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", "127.0.0.1:0", "-maxn", "300", "-train", "-eval-every", "2",
		"-serve-for", "300ms", "-quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	m := regexp.MustCompile(`(\d+) snapshot swaps`).FindStringSubmatch(stdout.String())
	if m == nil {
		t.Fatalf("no swap count in summary:\n%s", stdout.String())
	}
	if swaps, _ := strconv.Atoi(m[1]); swaps < 2 {
		t.Errorf("online mode hot-swapped %d times, want >= 2 (initial + per-epoch):\n%s",
			swaps, stdout.String())
	}
}

// TestRunSpansAndSLOSmoke boots a fully instrumented server, drives a traced
// request through HTTP, reads /slo live, and checks the span export and
// shutdown summary afterwards.
func TestRunSpansAndSLOSmoke(t *testing.T) {
	spansPath := filepath.Join(t.TempDir(), "spans.jsonl")
	var stdout, stderr syncBuf
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-maxn", "300", "-pretrain", "2",
			"-serve-for", "2s", "-spans", spansPath, "-slow", "0",
			"-slo", "latency<=1s@99,errors@99.9", "-slo-fast", "2s",
		}, &stdout, &stderr)
	}()

	addrRE := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never listened; stderr:\n%s", stderr.String())
	}
	base := "http://" + addr

	req, _ := http.NewRequest("POST", base+"/predict", strings.NewReader(`{"indices":[0],"values":[1]}`))
	req.Header.Set("X-Trace-Id", "00000000000000ab")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("X-Trace-Id") != "00000000000000ab" {
		t.Fatalf("predict: status %d, X-Trace-Id %q", resp.StatusCode, resp.Header.Get("X-Trace-Id"))
	}

	sloResp, err := http.Get(base + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep span.Report
	if err := json.NewDecoder(sloResp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	sloResp.Body.Close()
	if len(rep.Objectives) != 2 || rep.Alerting {
		t.Fatalf("/slo = %+v", rep)
	}

	if code := <-done; code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "spans: 1 traces started, 1 kept") {
		t.Errorf("span summary missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "slo latency") || !strings.Contains(out, "ok") {
		t.Errorf("slo summary missing:\n%s", out)
	}
	recs, err := span.ReadFile(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Trace != "00000000000000ab" {
		t.Fatalf("span export = %+v", recs)
	}
	names := map[string]bool{}
	for _, s := range recs[0].Spans {
		names[s.Name] = true
	}
	if !names["queue_wait"] || !names["score"] {
		t.Errorf("exported trace missing serve-path spans: %v", recs[0].Spans)
	}
}

// TestRunQuantizedSmoke serves with -quantized and checks the int8 path is
// live end to end: /healthz reports it, /predict answers, and the stats
// report counts quantised batches.
func TestRunQuantizedSmoke(t *testing.T) {
	var stdout, stderr syncBuf
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0", "-maxn", "300", "-pretrain", "2",
			"-serve-for", "2s", "-quantized", "-max-batch", "1",
		}, &stdout, &stderr)
	}()

	addrRE := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never listened; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "scoring int8") {
		t.Errorf("startup log does not announce the int8 path:\n%s", stderr.String())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/predict", "application/json",
		strings.NewReader(`{"indices":[0,2],"values":[1,-0.5]}`))
	if err != nil {
		t.Fatal(err)
	}
	var pred struct {
		Score   float64 `json:"score"`
		Version int64   `json:"model_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || pred.Version < 1 {
		t.Fatalf("predict: status %d, result %+v", resp.StatusCode, pred)
	}

	hResp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Quantized bool `json:"quantized"`
	}
	if err := json.NewDecoder(hResp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hResp.Body.Close()
	if !health.Quantized {
		t.Error("/healthz does not report quantized scoring")
	}

	sResp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		QuantBatches int64 `json:"quant_batches"`
	}
	if err := json.NewDecoder(sResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sResp.Body.Close()
	if stats.QuantBatches < 1 {
		t.Errorf("/stats quant_batches = %d after a quantised predict", stats.QuantBatches)
	}

	if code := <-done; code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-model", "tree"},
		{"-dataset", "nonesuch"},
		{"-chaos-plan", "nonesuch"},
		{"-slo", "latency<=junk@99"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestRunSnapshotDimMismatch(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap.json")
	b, _ := json.Marshal(map[string]any{"model": "lr", "dim": 3, "weights": []float64{1, 2, 3}})
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-snapshot", snap, "-maxn", "300", "-quiet"}, &stdout, &stderr); code != 1 {
		t.Fatalf("mismatched snapshot: exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "weights") {
		t.Errorf("unhelpful error: %s", stderr.String())
	}
}
