// Command sgdserve serves model predictions over HTTP with snapshot
// hot-swap and request micro-batching (internal/serve).
//
// Usage:
//
//	sgdserve [-addr :8080] [-model lr|svm|mlp] [-dataset covtype] [-maxn 2000]
//	         [-pretrain 5] [-train] [-epochs 0] [-threads 4] [-step 0.05]
//	         [-publish-every 1] [-eval-every 0]
//	         [-snapshot snap.json] [-save-snapshot snap.json]
//	         [-max-batch 64] [-max-delay 2ms] [-queue 0] [-workers 0] [-quantized]
//	         [-chaos-plan storm] [-chaos-intensity 1] [-seed 1]
//	         [-spans spans.jsonl] [-sample 1] [-slow 250ms]
//	         [-slo "latency<=250ms@99,errors@99.9"] [-slo-fast 1m] [-slo-slow 0] [-burn 2]
//	         [-serve-for 0] [-trace serve.jsonl] [-debug-addr :6060] [-quiet]
//
// Two modes:
//
//   - Offline (default): train -pretrain Hogwild epochs on the generated
//     dataset (or load -snapshot instead), publish once, serve that fixed
//     model.
//   - Online (-train): a background Hogwild trainer keeps running, hot-
//     swapping a fresh immutable snapshot into the serving path every
//     -publish-every epochs while requests are in flight.
//
// -quantized switches batch scoring to the int8 quantised path (DESIGN §14):
// every published snapshot carries an int8 twin of its weights and the linear
// models score through it; the MLP's score is nonlinear in w, so it silently
// keeps the float64 path (/healthz reports which is live).
//
// Endpoints: POST /predict, GET /healthz, /stats, /slo, /metrics (serving
// stats plus the training aggregator's families). -debug-addr additionally
// serves expvar ("sgd_obs") and net/http/pprof like the other binaries;
// -trace streams one JSONL event per dispatched micro-batch for cmd/sgdtrace.
//
// -spans enables request-level span tracing (internal/span): kept traces
// stream to the given JSONL path for cmd/sgdspan, head-sampled at -sample
// with tail retention of traces slower than -slow (errored and chaos-faulted
// requests are always kept). -slo names burn-rate objectives; the evaluation
// is served at /slo and exported to /metrics, alerting when both the -slo-fast
// and 10x (or -slo-slow) windows burn the error budget faster than -burn.
// -serve-for bounds the serving time (for smoke tests); otherwise sgdserve
// runs until SIGINT/SIGTERM. Exit status: 0 clean shutdown, 1 runtime
// failure, 2 usage error.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgdserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "HTTP listen address (host:0 picks a free port)")
		modelName    = fs.String("model", "lr", "served model: lr|svm|mlp")
		dataset      = fs.String("dataset", "covtype", "registry dataset the model trains on")
		maxN         = fs.Int("maxn", 2000, "examples generated for training")
		pretrain     = fs.Int("pretrain", 5, "offline mode: Hogwild epochs before serving")
		train        = fs.Bool("train", false, "online mode: keep training and hot-swapping snapshots while serving")
		epochs       = fs.Int("epochs", 0, "online mode: stop publishing after this many epochs (0 = until shutdown)")
		threads      = fs.Int("threads", 4, "Hogwild trainer threads")
		step         = fs.Float64("step", 0.05, "SGD step size")
		publishEvery = fs.Int("publish-every", 1, "online mode: epochs between snapshot publishes")
		evalEvery    = fs.Int("eval-every", 0, "online mode: epochs between training-loss evaluations (0 = never)")
		snapshotPath = fs.String("snapshot", "", "serve this saved snapshot instead of training")
		savePath     = fs.String("save-snapshot", "", "write the final served snapshot here on shutdown")
		maxBatch     = fs.Int("max-batch", 64, "largest inference micro-batch (1 disables batching)")
		maxDelay     = fs.Duration("max-delay", 2*time.Millisecond, "deadline before a partial batch flushes")
		queueDepth   = fs.Int("queue", 0, "admission queue bound (0 = 8x max-batch)")
		workers      = fs.Int("workers", 0, "pool workers per batch dispatch (0 = pool size)")
		quantized    = fs.Bool("quantized", false, "score through int8 quantised weights (lr/svm; mlp falls back to float64)")
		chaosPlan    = fs.String("chaos-plan", "", "inject this named fault plan into the serving path")
		intensity    = fs.Float64("chaos-intensity", 1, "fault plan intensity multiplier")
		seed         = fs.Int64("seed", 1, "seed for init params, shuffles and fault streams")
		spansPath    = fs.String("spans", "", "write kept request span traces here as JSONL (enables tracing)")
		sample       = fs.Float64("sample", 1, "head-sampling rate for request traces, in [0,1]")
		slowKeep     = fs.Duration("slow", 250*time.Millisecond, "always keep traces at least this slow (0 = head sampling only)")
		sloSpec      = fs.String("slo", "", `SLO objectives, e.g. "latency<=250ms@99,errors@99.9" (enables /slo burn rates)`)
		sloFast      = fs.Duration("slo-fast", time.Minute, "fast burn-rate window")
		sloSlow      = fs.Duration("slo-slow", 0, "slow burn-rate window (0 = 10x fast)")
		burn         = fs.Float64("burn", 2, "burn-rate alert threshold (both windows must exceed it)")
		serveFor     = fs.Duration("serve-for", 0, "shut down after this long (0 = until SIGINT/SIGTERM)")
		tracePath    = fs.String("trace", "", "write a JSONL serving trace (one event per micro-batch)")
		debugAddr    = fs.String("debug-addr", "", "serve expvar, pprof and aggregator /metrics on this address")
		quiet        = fs.Bool("quiet", false, "suppress startup logging")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	logf := func(format string, a ...any) {
		if !*quiet {
			fmt.Fprintf(stderr, "sgdserve: "+format+"\n", a...)
		}
	}

	spec, err := data.Lookup(*dataset)
	if err != nil {
		fmt.Fprintf(stderr, "sgdserve: %v\n", err)
		return 2
	}
	if *maxN > 0 && *maxN < spec.N {
		spec = spec.Scaled(float64(*maxN) / float64(spec.N))
	}
	ds := data.Generate(spec)

	var m model.Scorer
	switch *modelName {
	case "lr":
		m = model.NewLR(ds.D())
	case "svm":
		m = model.NewSVM(ds.D())
	case "mlp":
		m = model.NewMLPFor(spec)
	default:
		fmt.Fprintf(stderr, "sgdserve: unknown model %q (lr|svm|mlp)\n", *modelName)
		return 2
	}

	var plan chaos.Plan
	if *chaosPlan != "" {
		p, err := chaos.Lookup(*chaosPlan)
		if err != nil {
			fmt.Fprintf(stderr, "sgdserve: %v\n", err)
			return 2
		}
		plan = p.Scale(*intensity)
	}

	var tracer *span.Tracer
	var spanW *span.Writer
	if *spansPath != "" {
		spanW, err = span.CreateWriter(*spansPath)
		if err != nil {
			fmt.Fprintf(stderr, "sgdserve: %v\n", err)
			return 1
		}
		tracer = span.NewTracer(span.Config{
			SampleRate: *sample, SlowThreshold: *slowKeep, Seed: *seed,
		}, spanW)
		// Closed after the core (defers run LIFO): traces finishing during
		// core shutdown still reach the file.
		defer func() {
			if err := spanW.Close(); err != nil {
				fmt.Fprintf(stderr, "sgdserve: closing %s: %v\n", *spansPath, err)
			}
		}()
	}
	var slo *span.SLO
	if *sloSpec != "" {
		objs, err := span.ParseObjectives(*sloSpec)
		if err != nil {
			fmt.Fprintf(stderr, "sgdserve: %v\n", err)
			return 2
		}
		slo = span.NewSLO(span.SLOConfig{
			Objectives: objs, FastWindow: *sloFast, SlowWindow: *sloSlow,
			BurnThreshold: *burn,
		})
	}

	agg := obs.NewAggregator()
	rec := agg.Run("serve", spec.Name)
	var trace *obs.TraceWriter
	if *tracePath != "" {
		trace, err = obs.CreateTrace(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "sgdserve: %v\n", err)
			return 1
		}
		defer trace.Close()
		rec = obs.Tee(rec, trace.Run("serve", spec.Name))
	}

	eng := core.NewHogwild(m, ds, *step, *threads)
	core.Seed(eng, *seed)
	fp := core.Fingerprint{
		Engine: eng.Name(), Model: m.Name(), Dataset: spec.Name,
		N: ds.N(), Threads: *threads, Seed: *seed,
	}
	meta := serve.Snapshot{Model: m.Name(), Dim: ds.D(), Fingerprint: fp}

	store := serve.NewStore()
	w := m.InitParams(*seed)
	switch {
	case *snapshotPath != "":
		sn, err := serve.LoadSnapshotFile(*snapshotPath)
		if err != nil {
			fmt.Fprintf(stderr, "sgdserve: %v\n", err)
			return 1
		}
		if len(sn.Weights) != m.NumParams() {
			fmt.Fprintf(stderr, "sgdserve: snapshot has %d weights, %s/%s needs %d\n",
				len(sn.Weights), *modelName, *dataset, m.NumParams())
			return 1
		}
		store.Publish(sn)
		logf("serving snapshot %s (model %s, epoch %d)", *snapshotPath, sn.Model, sn.Epoch)
	case *train:
		logf("online mode: %s, publishing every %d epoch(s)", fp, *publishEvery)
	default:
		for e := 0; e < *pretrain; e++ {
			eng.RunEpoch(w)
		}
		meta.Epoch = *pretrain
		meta.Loss = model.MeanLoss(m, w, ds)
		store.PublishWeights(w, meta)
		logf("pretrained %d epochs of %s (loss %.4f)", *pretrain, fp, meta.Loss)
	}

	c := serve.NewCore(m, store, serve.Config{
		MaxBatch: *maxBatch, MaxDelay: *maxDelay, QueueDepth: *queueDepth,
		Workers: *workers, Rec: rec, Plan: plan, ChaosSeed: *seed,
		Tracer: tracer, SLO: slo, Quantized: *quantized,
	})
	defer c.Close()
	if *quantized && !c.Config().Quantized {
		logf("model %s cannot score quantised; serving float64", *modelName)
	}

	stopTrainer := make(chan struct{})
	trainerDone := make(chan struct{})
	if *train && *snapshotPath == "" {
		tr := &serve.Trainer{
			Engine: eng, Model: m, Data: ds, Store: store, W: w,
			PublishEvery: *publishEvery, EvalEvery: *evalEvery,
			MaxEpochs: *epochs, Meta: meta,
		}
		go func() { defer close(trainerDone); tr.Run(stopTrainer) }()
	} else {
		close(trainerDone)
	}

	srv := serve.NewServer(c)
	srv.SetExtraMetrics(agg.Snapshot)
	boundAddr, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(stderr, "sgdserve: %v\n", err)
		return 1
	}
	cfg := c.Config()
	scoringPath := "float64"
	if cfg.Quantized {
		scoringPath = "int8"
	}
	logf("listening on %s (max-batch %d, max-delay %s, queue %d, workers %d, scoring %s)",
		boundAddr, cfg.MaxBatch, cfg.MaxDelay, cfg.QueueDepth, cfg.Workers, scoringPath)
	if plan.Active() {
		logf("fault plan active: %s", plan)
	}

	if *debugAddr != "" {
		if expvar.Get("sgd_obs") == nil {
			expvar.Publish("sgd_obs", expvar.Func(agg.Export))
		}
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(stderr, "sgdserve: debug server: %v\n", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if *serveFor > 0 {
		select {
		case <-time.After(*serveFor):
			logf("serve-for %s elapsed", *serveFor)
		case s := <-sig:
			logf("received %s", s)
		}
	} else {
		logf("received %s", <-sig)
	}

	close(stopTrainer)
	<-trainerDone
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "sgdserve: shutdown: %v\n", err)
	}

	rep := c.Stats().Snapshot()
	fmt.Fprintf(stdout, "served %d requests in %d batches (avg %.1f/batch), %d rejected, %d snapshot swaps, p99 %.3fms\n",
		rep.Requests, rep.Batches, rep.AvgBatch, rep.Rejected, rep.Swaps,
		rep.LatencyP99*1e3)
	if tracer != nil {
		st := tracer.Stats()
		fmt.Fprintf(stdout, "spans: %d traces started, %d kept (%d head, %d slow, %d fault, %d error) -> %s\n",
			st.Started, st.Kept, st.KeptHead, st.KeptSlow, st.KeptFault, st.KeptError, *spansPath)
	}
	if slo != nil {
		srep := slo.Snapshot()
		state := "ok"
		if srep.Alerting {
			state = "ALERT"
		}
		for _, o := range srep.Objectives {
			fmt.Fprintf(stdout, "slo %s: burn %.2f (fast) / %.2f (slow), threshold %.1f, %s\n",
				o.Name, o.FastBurn, o.SlowBurn, srep.BurnThreshold, state)
		}
	}

	if *savePath != "" {
		sn := store.Load()
		if sn == nil {
			fmt.Fprintln(stderr, "sgdserve: no snapshot to save")
			return 1
		}
		if err := serve.SaveSnapshot(*savePath, sn); err != nil {
			fmt.Fprintf(stderr, "sgdserve: %v\n", err)
			return 1
		}
		logf("snapshot v%d saved to %s", sn.Version, *savePath)
	}
	return 0
}
