package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/regress"
)

// trimmed is a set of flags that cuts the matrix to the four sparse cpu-par
// configs (sync, async, local-sync, local-async on w8a) at a scale that runs
// in well under a second.
var trimmed = []string{
	"-datasets", "w8a", "-devices", "cpu-par",
	"-maxn", "250", "-epochs", "8", "-threads", "8",
}

func TestRunStormReport(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-plan", "storm", "-seed", "1"}, trimmed...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var rep regress.DegradationReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v", err)
	}
	if rep.Plan.Name != "storm" {
		t.Errorf("report plan %q, want storm", rep.Plan.Name)
	}
	if len(rep.Configs) != 4 {
		t.Fatalf("got %d configs, want 4 (sync, async, local-sync, local-async on w8a/cpu-par)", len(rep.Configs))
	}
	if !rep.AsyncAllReached {
		t.Error("an async config missed its threshold under storm at test scale")
	}
	// The contrast the command exists to show: every synchronous tier
	// (barrier or H-step barrier) degrades by several times the healthy
	// time-to-threshold (or never reaches), the asynchronous ones barely.
	if rep.MinSyncSlowdown >= 0 && rep.MinSyncSlowdown < 3 {
		t.Errorf("sync slowdown %.2f, want >= 3 or unreached", rep.MinSyncSlowdown)
	}
	if rep.MaxAsyncSlowdown > 3 {
		t.Errorf("async slowdown %.2f, want < 3", rep.MaxAsyncSlowdown)
	}
}

// The local strategy tokens must select exactly the Local-SGD tier.
func TestRunLocalStrategyFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := append([]string{"-plan", "storm", "-strategies", "local-sync,local-async"}, trimmed...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var rep regress.DegradationReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v", err)
	}
	if len(rep.Configs) != 2 {
		t.Fatalf("got %d configs, want the 2 local-sgd ones", len(rep.Configs))
	}
	for _, c := range rep.Configs {
		if c.Strategy != "local-sync" && c.Strategy != "local-async" {
			t.Errorf("filter leaked config %q", c.Config)
		}
	}
}

func TestRunWritesFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	out := filepath.Join(t.TempDir(), "report.json")
	args := append([]string{"-plan", "straggler", "-out", out, "-strategies", "async"}, trimmed...)
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("stdout not empty with -out: %q", stdout.String())
	}
	rep := readReport(t, out)
	if len(rep.Configs) != 1 || rep.Configs[0].Strategy != "async" {
		t.Errorf("unexpected configs in file report: %+v", rep.Configs)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"storm", "straggler", "drops", "stale"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list output missing plan %q:\n%s", want, stdout.String())
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-plan", "nosuchplan"},
		{"-intensities", "1,bogus"},
		{"-datasets", "nosuchdataset"},
		{"-badflag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func readReport(t *testing.T, path string) regress.DegradationReport {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep regress.DegradationReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}
