// Command sgdchaos runs the regression matrix under a named fault plan and
// emits a JSON degradation report: per configuration, the healthy
// time-to-threshold and how much it stretches when a straggler slows one
// worker, updates are dropped or duplicated, or parameter reads go stale.
// The report is the paper's sync-fragile/async-robust contrast as data —
// a synchronous barrier waits out the straggler's full factor while the
// dynamically claimed asynchronous epochs barely notice it.
//
// Usage:
//
//	sgdchaos [-plan storm] [-seed 1] [-seq] [-deadline 0] [-ssp 0]
//	         [-intensities 0,0.5,1] [-tol 0.1] [-out report.json]
//	         [-strategies sync,async] [-devices cpu-par,gpu] [-datasets covtype,w8a]
//	         [-maxn 0] [-epochs 0] [-threads 0]
//	sgdchaos -list
//
// By default the paper's 8-engine matrix plus the two Local-SGD configs
// (local-sync/local-async) and the two heterogeneous CPU+GPU configs
// (hetero-sync/hetero-async, see internal/core) run sequentially under the
// virtual-time scheduler, so the report is exactly reproducible for a given
// -seed. -deadline arms the synchronous engines' straggler mitigation (the
// barrier fires at deadline x the healthy epoch and the update lands scaled
// by the received gradient fraction); -ssp bounds the Hogwild workers'
// progress skew. The filter and override flags trim the matrix for quick
// runs. Exit status: 0 report written, 1 a run failed, 2 usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/regress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgdchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		planName    = fs.String("plan", "storm", "fault plan name (-list to enumerate)")
		list        = fs.Bool("list", false, "list the named fault plans and exit")
		seed        = fs.Int64("seed", 1, "seed for model init, shuffles, fault streams and the schedule")
		seq         = fs.Bool("seq", true, "run faulted epochs on the virtual-time sequential scheduler (exact replay)")
		deadline    = fs.Float64("deadline", 0, "sync barrier deadline as a multiple of the healthy epoch (0 = classic BSP)")
		ssp         = fs.Int("ssp", 0, "bound Hogwild workers' progress skew to this many updates (0 = unbounded)")
		tol         = fs.Float64("tol", 0.1, "loss-gap tolerance defining each config's threshold")
		intensities = fs.String("intensities", "", "comma-separated plan intensity multipliers (default 1)")
		out         = fs.String("out", "-", "write the report JSON to this path (- = stdout)")
		strategies  = fs.String("strategies", "", "comma filter on matrix strategies (sync,async,local-sync,local-async,hetero-sync,hetero-async)")
		devices     = fs.String("devices", "", "comma filter on matrix devices (cpu-par,gpu,cpu+gpu)")
		datasets    = fs.String("datasets", "", "comma filter on matrix datasets (covtype,w8a)")
		maxN        = fs.Int("maxn", 0, "override per-config example count (0 = matrix default)")
		epochs      = fs.Int("epochs", 0, "override per-config epoch budget (0 = matrix default)")
		threads     = fs.Int("threads", 0, "override modeled CPU thread count (0 = matrix default)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range chaos.PlanNames() {
			p, _ := chaos.Lookup(name)
			fmt.Fprintf(stdout, "%-10s %s\n", name, p)
		}
		return 0
	}
	plan, err := chaos.Lookup(*planName)
	if err != nil {
		fmt.Fprintf(stderr, "sgdchaos: %v (plans: %s)\n", err, strings.Join(chaos.PlanNames(), ", "))
		return 2
	}
	opts := regress.ChaosOpts{
		Seed:       *seed,
		Sequential: *seq,
		Deadline:   *deadline,
		SSPBound:   *ssp,
		Tol:        *tol,
	}
	if *intensities != "" {
		for _, f := range strings.Split(*intensities, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v < 0 {
				fmt.Fprintf(stderr, "sgdchaos: bad intensity %q\n", f)
				return 2
			}
			opts.Intensities = append(opts.Intensities, v)
		}
	}

	filter := regress.MatrixFilter{
		Strategies: *strategies,
		Devices:    *devices,
		Datasets:   *datasets,
		N:          *maxN,
		Epochs:     *epochs,
		Threads:    *threads,
	}
	// The ladder covers the paper's 8-way cube plus the Local-SGD and
	// heterogeneous CPU+GPU tiers; the parameter-server configs have their
	// own chaos path in cmd/sgdps.
	matrix := append(regress.DefaultMatrix(), regress.LocalMatrix()...)
	matrix = append(matrix, regress.HeteroMatrix()...)
	configs, err := filter.Apply(matrix)
	if err != nil {
		fmt.Fprintf(stderr, "sgdchaos: %v\n", err)
		return 2
	}
	for _, c := range configs {
		fmt.Fprintf(stderr, "sgdchaos: %s under %s...\n", c.Fingerprint().Key(), plan)
	}
	rep, err := regress.Degradation(configs, plan, opts)
	if err != nil {
		fmt.Fprintf(stderr, "sgdchaos: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "sgdchaos: mildest sync degradation %s, worst async %.2fx, async all reached: %v\n",
		slowdownString(rep.MinSyncSlowdown), rep.MaxAsyncSlowdown, rep.AsyncAllReached)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "sgdchaos: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if *out == "-" || *out == "" {
		stdout.Write(buf)
		return 0
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "sgdchaos: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "sgdchaos: wrote %s (%d configs)\n", *out, len(rep.Configs))
	return 0
}

// slowdownString renders a degradation factor, spelling out the -1 sentinel
// (threshold never reached under the plan).
func slowdownString(s float64) string {
	if s < 0 {
		return "unreached"
	}
	return fmt.Sprintf("%.2fx", s)
}
