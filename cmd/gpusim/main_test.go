package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunReportsKernels(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dataset", "covtype", "-maxn", "300"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"device:", "SpMV", "async epoch", "updates"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunKernelVariants(t *testing.T) {
	for _, flagName := range []string{"-combine", "-warp-per-example", "-shared"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-dataset", "w8a", "-maxn", "300", flagName}, &stdout, &stderr)
		if code != 0 {
			t.Errorf("%s: exit %d, stderr:\n%s", flagName, code, stderr.String())
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-dataset", "nosuchdataset"},
		{"-badflag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit %d, want 2", args, code)
		}
	}
}
