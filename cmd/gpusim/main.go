// Command gpusim inspects the simulated Tesla K80: it runs representative
// kernels against a chosen dataset and prints the cost breakdown the
// simulator derives (transactions, divergence, conflict rates), which is the
// raw material behind the GPU columns of the reproduced tables.
//
// Usage:
//
//	gpusim -dataset news -maxn 2000 [-combine]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/model"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpusim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name    = fs.String("dataset", "covtype", "dataset name")
		maxN    = fs.Int("maxn", 2000, "generated examples")
		combine = fs.Bool("combine", false, "enable warp-shuffle conflict combining")
		warpPer = fs.Bool("warp-per-example", false, "cooperative warp-per-example kernel layout")
		shared  = fs.Bool("shared", false, "per-block shared-memory model replicas")
		step    = fs.Float64("step", 0.1, "SGD step for the async kernel")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec, err := data.Lookup(*name)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ds := data.Generate(spec.Scaled(float64(*maxN) / float64(spec.N)))
	dev := gpusim.K80()
	fmt.Fprintf(stdout, "device: %s — %d MPs x %d cores, %d resident warps, %.0f GB/s\n",
		dev.Spec.Name, dev.Spec.MPs, dev.Spec.CoresPerMP,
		dev.Spec.MaxResidentWarps(), dev.Spec.GlobalBandwidthBPS/1e9)
	fmt.Fprintf(stdout, "dataset: %s\n\n", data.ComputeStats(ds))

	// Synchronous kernels.
	spmv := dev.CostSpMV(ds.X)
	spmvT := dev.CostSpMVT(ds.X)
	fmt.Fprintf(stdout, "SpMV  : %10.6fs  %12d tx  %14.0f bytes  divergence x%.2f\n",
		spmv.Seconds, spmv.Transactions, spmv.Bytes, spmv.LockstepOps/spmv.Flops)
	fmt.Fprintf(stdout, "SpMV^T: %10.6fs  %12d tx  %14.0f bytes\n",
		spmvT.Seconds, spmvT.Transactions, spmvT.Bytes)

	// Asynchronous Hogwild kernel with conflict accounting.
	m := model.NewLR(ds.D())
	e := core.NewGPUHogwild(m, ds, *step)
	e.Combine = *combine
	e.WarpPerExample = *warpPer
	e.SharedMemory = *shared
	w := m.InitParams(1)
	sec := e.RunEpoch(w)
	st := e.LastStats()
	fmt.Fprintf(stdout, "\nasync epoch: %.6fs modeled (%d rounds, %d resident warps)\n",
		sec, st.Rounds, e.MaxWarps)
	fmt.Fprintf(stdout, "updates %d | lost intra-warp %d (%.1f%%) | lost inter-warp %d (%.1f%%) | applied %d\n",
		st.Updates,
		st.LostIntra, pct(st.LostIntra, st.Updates),
		st.LostInter, pct(st.LostInter, st.Updates),
		st.Applied)
	fmt.Fprintf(stdout, "kernel: %d tx, %.0f bytes, divergence x%.2f\n",
		st.Cost.Transactions, st.Cost.Bytes, st.Cost.LockstepOps/st.Cost.Flops)
	return 0
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
