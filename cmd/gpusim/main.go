// Command gpusim inspects the simulated Tesla K80: it runs representative
// kernels against a chosen dataset and prints the cost breakdown the
// simulator derives (transactions, divergence, conflict rates), which is the
// raw material behind the GPU columns of the reproduced tables.
//
// Usage:
//
//	gpusim -dataset news -maxn 2000 [-combine]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gpusim"
	"repro/internal/model"
)

func main() {
	var (
		name    = flag.String("dataset", "covtype", "dataset name")
		maxN    = flag.Int("maxn", 2000, "generated examples")
		combine = flag.Bool("combine", false, "enable warp-shuffle conflict combining")
		warpPer = flag.Bool("warp-per-example", false, "cooperative warp-per-example kernel layout")
		shared  = flag.Bool("shared", false, "per-block shared-memory model replicas")
		step    = flag.Float64("step", 0.1, "SGD step for the async kernel")
	)
	flag.Parse()

	spec, err := data.Lookup(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ds := data.Generate(spec.Scaled(float64(*maxN) / float64(spec.N)))
	dev := gpusim.K80()
	fmt.Printf("device: %s — %d MPs x %d cores, %d resident warps, %.0f GB/s\n",
		dev.Spec.Name, dev.Spec.MPs, dev.Spec.CoresPerMP,
		dev.Spec.MaxResidentWarps(), dev.Spec.GlobalBandwidthBPS/1e9)
	fmt.Printf("dataset: %s\n\n", data.ComputeStats(ds))

	// Synchronous kernels.
	spmv := dev.CostSpMV(ds.X)
	spmvT := dev.CostSpMVT(ds.X)
	fmt.Printf("SpMV  : %10.6fs  %12d tx  %14.0f bytes  divergence x%.2f\n",
		spmv.Seconds, spmv.Transactions, spmv.Bytes, spmv.LockstepOps/spmv.Flops)
	fmt.Printf("SpMV^T: %10.6fs  %12d tx  %14.0f bytes\n",
		spmvT.Seconds, spmvT.Transactions, spmvT.Bytes)

	// Asynchronous Hogwild kernel with conflict accounting.
	m := model.NewLR(ds.D())
	e := core.NewGPUHogwild(m, ds, *step)
	e.Combine = *combine
	e.WarpPerExample = *warpPer
	e.SharedMemory = *shared
	w := m.InitParams(1)
	sec := e.RunEpoch(w)
	st := e.LastStats()
	fmt.Printf("\nasync epoch: %.6fs modeled (%d rounds, %d resident warps)\n",
		sec, st.Rounds, e.MaxWarps)
	fmt.Printf("updates %d | lost intra-warp %d (%.1f%%) | lost inter-warp %d (%.1f%%) | applied %d\n",
		st.Updates,
		st.LostIntra, pct(st.LostIntra, st.Updates),
		st.LostInter, pct(st.LostInter, st.Updates),
		st.Applied)
	fmt.Printf("kernel: %d tx, %.0f bytes, divergence x%.2f\n",
		st.Cost.Transactions, st.Cost.Bytes, st.Cost.LockstepOps/st.Cost.Flops)
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
