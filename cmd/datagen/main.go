// Command datagen generates the study's synthetic datasets, prints their
// Table I statistics, and optionally writes them in LIBSVM format so they
// can be consumed by other tools (or compared against the real files).
//
// Usage:
//
//	datagen -dataset w8a [-maxn 0] [-mlp] [-o w8a.libsvm]
//
// With -maxn 0 the full Table I example count is generated (can be large);
// -mlp applies the paper's feature-grouping transform first.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
)

func main() {
	var (
		name = flag.String("dataset", "", "dataset name (covtype|w8a|real-sim|rcv1|news); empty = stats for all")
		maxN = flag.Int("maxn", 4000, "cap on generated examples (0 = full Table I size)")
		mlp  = flag.Bool("mlp", false, "apply the MLP feature-grouping transform")
		out  = flag.String("o", "", "write LIBSVM to this file")
	)
	flag.Parse()

	names := data.Names()
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		spec, err := data.Lookup(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		gen := spec
		if *maxN > 0 {
			gen = spec.Scaled(float64(*maxN) / float64(spec.N))
		}
		ds := data.Generate(gen)
		if *mlp {
			ds, err = data.ForMLP(ds, spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := ds.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "generated dataset invalid:", err)
			os.Exit(1)
		}
		fmt.Println(data.ComputeStats(ds).String(), "mlp-arch:", spec.ArchString())
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := data.WriteLIBSVM(f, ds); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d examples)\n", *out, ds.N())
		}
	}
}
