// Command datagen generates the study's synthetic datasets, prints their
// Table I statistics, and optionally writes them in LIBSVM format so they
// can be consumed by other tools (or compared against the real files).
//
// Usage:
//
//	datagen -dataset w8a [-maxn 0] [-mlp] [-o w8a.libsvm]
//
// With -maxn 0 the full Table I example count is generated (can be large);
// -mlp applies the paper's feature-grouping transform first.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/data"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name = fs.String("dataset", "", "dataset name (covtype|w8a|real-sim|rcv1|news); empty = stats for all")
		maxN = fs.Int("maxn", 4000, "cap on generated examples (0 = full Table I size)")
		mlp  = fs.Bool("mlp", false, "apply the MLP feature-grouping transform")
		out  = fs.String("o", "", "write LIBSVM to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	names := data.Names()
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		spec, err := data.Lookup(n)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		gen := spec
		if *maxN > 0 {
			gen = spec.Scaled(float64(*maxN) / float64(spec.N))
		}
		ds := data.Generate(gen)
		if *mlp {
			ds, err = data.ForMLP(ds, spec)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		if err := ds.Validate(); err != nil {
			fmt.Fprintln(stderr, "generated dataset invalid:", err)
			return 1
		}
		fmt.Fprintln(stdout, data.ComputeStats(ds).String(), "mlp-arch:", spec.ArchString())
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			if err := data.WriteLIBSVM(f, ds); err != nil {
				f.Close()
				fmt.Fprintln(stderr, err)
				return 1
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s (%d examples)\n", *out, ds.N())
		}
	}
	return 0
}
