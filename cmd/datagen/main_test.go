package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
)

func TestRunStatsAndLIBSVM(t *testing.T) {
	out := filepath.Join(t.TempDir(), "w8a.libsvm")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-dataset", "w8a", "-maxn", "200", "-o", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "w8a") {
		t.Errorf("stats line missing dataset name:\n%s", stdout.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := data.ReadLIBSVM(f, "w8a", 0)
	if err != nil {
		t.Fatalf("written LIBSVM does not round-trip: %v", err)
	}
	if ds.N() != 200 {
		t.Errorf("round-tripped %d examples, want 200", ds.N())
	}
}

func TestRunAllDatasets(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-maxn", "120"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	lines := strings.Count(strings.TrimSpace(stdout.String()), "\n") + 1
	if want := len(data.Names()); lines != want {
		t.Errorf("got %d stats lines, want one per dataset (%d)", lines, want)
	}
}

func TestRunBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-dataset", "nosuchdataset"},
		{"-badflag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit %d, want 2", args, code)
		}
	}
}
