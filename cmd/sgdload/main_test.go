package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/span"
)

// startTestServer serves a tiny LR through the real serve stack, optionally
// instrumented (tracer + SLO) and faulted via mutate.
func startTestServer(t *testing.T, mutate ...func(*serve.Config)) string {
	t.Helper()
	store := serve.NewStore()
	w := make([]float64, 54)
	for i := range w {
		w[i] = 0.01 * float64(i)
	}
	store.Publish(&serve.Snapshot{Model: "lr", Dim: 54, Weights: w})
	cfg := serve.Config{MaxBatch: 16, MaxDelay: time.Millisecond}
	for _, f := range mutate {
		f(&cfg)
	}
	c := serve.NewCore(model.NewLR(54), store, cfg)
	srv := httptest.NewServer(serve.NewServer(c).Handler())
	t.Cleanup(func() { srv.Close(); c.Close() })
	return srv.URL
}

// instrumented wires a sample-everything tracer (no export) and an SLO with
// a window short enough for a sub-second load run.
func instrumented(t *testing.T) func(*serve.Config) {
	t.Helper()
	objs, err := span.ParseObjectives("errors@99.9")
	if err != nil {
		t.Fatal(err)
	}
	return func(cfg *serve.Config) {
		cfg.Tracer = span.NewTracer(span.Config{SampleRate: 1, Seed: 5}, nil)
		cfg.SLO = span.NewSLO(span.SLOConfig{Objectives: objs, FastWindow: 2 * time.Second})
	}
}

func TestRunClosedLoopHTTP(t *testing.T) {
	url := startTestServer(t)
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", url, "-conc", "4", "-duration", "300ms",
		"-maxn", "300", "-out", out, "-check",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if !rep.CheckedOK || len(rep.Runs) != 1 || rep.Runs[0].OK == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Runs[0].Mode != "closed" {
		t.Fatalf("mode = %q, want closed", rep.Runs[0].Mode)
	}
	if rep.Server == nil || rep.Server.Model != "lr" {
		t.Fatalf("report lacks server identity: %+v", rep.Server)
	}
}

func TestRunOpenLoopHTTP(t *testing.T) {
	url := startTestServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", url, "-rate", "200", "-duration", "300ms",
		"-maxn", "300", "-out", "-",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout.String())
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Mode != "open" || rep.Runs[0].OK == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunInprocReportsSpeedupAndFingerprint(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-inproc", "-duration", "150ms", "-conc", "8",
		"-maxn", "300", "-out", "-", "-check",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not a JSON report: %v", err)
	}
	if len(rep.Runs) != 2 || rep.Speedup <= 0 {
		t.Fatalf("A/B report = %+v", rep)
	}
	if rep.Server == nil || rep.Server.FingerprintKey == "" {
		t.Fatal("in-process report lacks the training fingerprint")
	}
	if rep.Runs[0].AvgBatch <= rep.Runs[1].AvgBatch {
		t.Fatalf("batched avg batch %.2f should exceed unbatched %.2f",
			rep.Runs[0].AvgBatch, rep.Runs[1].AvgBatch)
	}
}

// TestRunQuantABReport: the quantised-vs-float A/B produces two phases, a
// populated accuracy probe with zero bound violations, and a deterministic
// delta checksum (same seed + dataset => same quantiser output).
func TestRunQuantABReport(t *testing.T) {
	runOnce := func() report {
		t.Helper()
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-quant-ab", "-duration", "150ms", "-conc", "8",
			"-maxn", "300", "-out", "-", "-check", "-expect-speedup", "0.2",
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
		}
		var rep report
		if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
			t.Fatalf("stdout is not a JSON report: %v", err)
		}
		return rep
	}
	rep := runOnce()
	if len(rep.Runs) != 2 || rep.Runs[0].Mode != "inproc-float" || rep.Runs[1].Mode != "inproc-quant" {
		t.Fatalf("quant A/B phases = %+v", rep.Runs)
	}
	q := rep.Quant
	if q == nil {
		t.Fatal("report lacks the quant_ab section")
	}
	if q.Speedup <= 0 || q.ProbeRows != 300 {
		t.Fatalf("quant_ab = %+v", q)
	}
	if q.BoundViolations != 0 {
		t.Errorf("%d analytic bound violations", q.BoundViolations)
	}
	if q.MaxAbsDelta <= 0 || q.MaxAbsDelta < q.MeanAbsDelta {
		t.Errorf("delta stats inconsistent: max %g, mean %g", q.MaxAbsDelta, q.MeanAbsDelta)
	}
	if len(q.DeltaChecksum) != 16 {
		t.Errorf("delta checksum %q is not 16 hex digits", q.DeltaChecksum)
	}
	if !rep.Server.Quantized {
		t.Error("server identity does not record the quantised mode")
	}
	if again := runOnce(); again.Quant.DeltaChecksum != q.DeltaChecksum {
		t.Errorf("delta checksum not deterministic: %s vs %s",
			again.Quant.DeltaChecksum, q.DeltaChecksum)
	}
}

// TestRunQuantABExpectSpeedupFails: an unmeetable -expect-speedup must fail
// the check and exit 1 — the CI assertion actually bites.
func TestRunQuantABExpectSpeedupFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-quant-ab", "-duration", "100ms", "-conc", "4",
		"-maxn", "200", "-out", "-", "-check", "-expect-speedup", "1000",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "below required") {
		t.Errorf("stderr does not name the failed speedup gate:\n%s", stderr.String())
	}
}

// TestRunTracedServerQuietSLO: against an instrumented healthy server, every
// response carries our trace ID, the report embeds a quiet /slo evaluation,
// and -expect-alert quiet passes.
func TestRunTracedServerQuietSLO(t *testing.T) {
	url := startTestServer(t, instrumented(t))
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", url, "-conc", "4", "-duration", "300ms",
		"-maxn", "300", "-out", "-", "-check", "-expect-alert", "quiet",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	// Every successful response must echo our ID (rejected requests bounce
	// at admission, before the batcher stamps the trace).
	r := rep.Runs[0]
	if r.Traced < r.OK || r.Traced == 0 {
		t.Fatalf("traced %d of %d ok requests", r.Traced, r.OK)
	}
	if rep.SLO == nil || len(rep.SLO.Objectives) != 1 || rep.SLO.Alerting {
		t.Fatalf("report SLO = %+v", rep.SLO)
	}
	if rep.SLO.Objectives[0].FastTotal == 0 {
		t.Fatal("server SLO saw no requests")
	}
}

// TestRunExpectAlertFire: a server dropping every request burns the error
// budget, so -expect-alert fire passes and quiet fails.
func TestRunExpectAlertFire(t *testing.T) {
	url := startTestServer(t, instrumented(t), func(cfg *serve.Config) {
		cfg.Plan = chaos.Plan{DropFrac: 1}
		cfg.ChaosSeed = 3
	})
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", url, "-conc", "2", "-duration", "200ms",
		"-maxn", "300", "-out", os.DevNull, "-expect-alert", "fire",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("alerting server: exit %d, stderr:\n%s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	code = run([]string{
		"-target", url, "-conc", "2", "-duration", "200ms",
		"-maxn", "300", "-out", os.DevNull, "-expect-alert", "quiet",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("expected quiet against alerting server: exit %d, want 1", code)
	}
}

func TestRunTargetDown(t *testing.T) {
	// A refused connection must fail cleanly, not hang or panic.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-target", dead.URL, "-duration", "100ms", "-maxn", "300"}, &stdout, &stderr); code != 1 {
		t.Fatalf("dead target: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-dataset", "nonesuch"},
		{"-bogus"},
		{"-expect-alert", "maybe"},
		{"-inproc", "-expect-alert", "quiet"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}
