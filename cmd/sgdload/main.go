// Command sgdload drives load at an sgdserve instance (or an in-process
// serving core) and writes a JSON latency/throughput report.
//
// Usage:
//
//	sgdload -target http://localhost:8080 [-conc 8 | -rate 500] \
//	        [-duration 5s] [-dataset covtype] [-maxn 2000] [-out report.json] [-check]
//	sgdload -inproc [-duration 2s] [-conc 64] [-workers 0] [-max-batch 64] \
//	        [-out report.json] [-check] [-min-speedup 2]
//
// Three modes:
//
//   - Closed loop (-conc N): N clients each keep exactly one request in
//     flight; throughput is whatever the server sustains.
//   - Open loop (-rate R): requests fire at R/s regardless of completions,
//     exposing queueing collapse the closed loop hides.
//   - In-process A/B (-inproc): trains a small covtype LR, then drives the
//     serving core directly (no HTTP framing) twice at the same pool worker
//     count — micro-batching enabled vs MaxBatch=1 — and reports the
//     batched/unbatched throughput ratio. This is the repo's measured
//     evidence for the serving half of the paper's batching tradeoff; `make
//     serve-smoke` gates on speedup >= 2.
//
// The report embeds the server's /healthz payload (in-process: the
// snapshot's own identity), so the core.Fingerprint discipline applies:
// reports are only comparable when the fingerprints match. -check makes
// sanity assertions (every request accounted for, nonzero throughput,
// ordered quantiles) and -min-speedup gates the A/B ratio; failures exit 1.
// Exit status: 0 ok, 1 load or check failure, 2 usage error.
//
// HTTP requests carry unique client-minted X-Trace-Id headers, so a server
// running with -spans exports span trees stitched to this load run, and the
// report embeds the server's /slo burn-rate evaluation after the run.
// -expect-alert fire|quiet turns that into an assertion — the span-smoke CI
// job drives a storm-faulted server expecting fire and a clean one expecting
// quiet.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// runReport is one measured load phase.
type runReport struct {
	Mode          string  `json:"mode"` // closed|open|inproc-batched|inproc-unbatched
	DurationS     float64 `json:"duration_s"`
	Sent          int64   `json:"sent"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"` // HTTP 429 / ErrOverloaded
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Traced        int64   `json:"traced,omitempty"` // responses that echoed our X-Trace-Id
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	AvgBatch      float64 `json:"avg_batch,omitempty"` // in-process only
}

// report is the JSON document sgdload writes.
type report struct {
	Target    string        `json:"target,omitempty"`
	Server    *serve.Health `json:"server,omitempty"` // /healthz at run start
	Runs      []runReport   `json:"runs"`
	Speedup   float64       `json:"batched_speedup,omitempty"`
	SLO       *span.Report  `json:"slo,omitempty"` // /slo after the run (HTTP mode)
	CheckedOK bool          `json:"checked_ok,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgdload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target     = fs.String("target", "http://localhost:8080", "sgdserve base URL")
		conc       = fs.Int("conc", 8, "closed-loop concurrent clients (also the in-process caller count)")
		rate       = fs.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
		duration   = fs.Duration("duration", 5*time.Second, "measurement length per run")
		dataset    = fs.String("dataset", "covtype", "dataset whose rows become request payloads")
		maxN       = fs.Int("maxn", 2000, "examples generated for payloads (and in-process training)")
		seed       = fs.Int64("seed", 1, "payload sampling (and in-process training) seed")
		inproc     = fs.Bool("inproc", false, "run the in-process batched vs unbatched A/B instead of HTTP load")
		workers    = fs.Int("workers", 0, "in-process pool workers per dispatch, equal in both phases (0 = pool size)")
		maxBatch   = fs.Int("max-batch", 64, "in-process batched phase's micro-batch bound")
		pretrain   = fs.Int("pretrain", 3, "in-process Hogwild epochs before measuring")
		outPath    = fs.String("out", "-", "write the JSON report here (- = stdout)")
		check      = fs.Bool("check", false, "assert report sanity; exit 1 on violation")
		minSpeedup = fs.Float64("min-speedup", 0, "with -check and -inproc: minimum batched/unbatched throughput ratio")
		expAlert   = fs.String("expect-alert", "", "assert the server's /slo state after the run: fire|quiet (exit 1 on mismatch)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *expAlert != "" && *expAlert != "fire" && *expAlert != "quiet" {
		fmt.Fprintf(stderr, "sgdload: -expect-alert %q: want fire or quiet\n", *expAlert)
		return 2
	}
	if *expAlert != "" && *inproc {
		fmt.Fprintln(stderr, "sgdload: -expect-alert needs an HTTP target (/slo lives on the server)")
		return 2
	}

	spec, err := data.Lookup(*dataset)
	if err != nil {
		fmt.Fprintf(stderr, "sgdload: %v\n", err)
		return 2
	}
	if *maxN > 0 && *maxN < spec.N {
		spec = spec.Scaled(float64(*maxN) / float64(spec.N))
	}
	ds := data.Generate(spec)

	var rep report
	if *inproc {
		rep = runInproc(ds, *conc, *workers, *maxBatch, *pretrain, *duration, *seed)
	} else {
		rep, err = runHTTP(ds, *target, *conc, *rate, *duration, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "sgdload: %v\n", err)
			return 1
		}
	}

	if *check {
		if err := checkReport(&rep, *inproc, *minSpeedup); err != nil {
			fmt.Fprintf(stderr, "sgdload: check failed: %v\n", err)
			emit(stderr, &rep, "-")
			return 1
		}
		rep.CheckedOK = true
	}
	for _, r := range rep.Runs {
		fmt.Fprintf(stderr, "sgdload: %-16s %8.0f req/s  p50 %6.3fms  p99 %6.3fms  (%d ok, %d rejected, %d errors)\n",
			r.Mode, r.ThroughputRPS, r.LatencyP50Ms, r.LatencyP99Ms, r.OK, r.Rejected, r.Errors)
		if r.Traced > 0 {
			fmt.Fprintf(stderr, "sgdload: %-16s %d responses carried our trace IDs (server spans stitch to this run)\n",
				r.Mode, r.Traced)
		}
	}
	if rep.Speedup > 0 {
		fmt.Fprintf(stderr, "sgdload: batched/unbatched speedup %.2fx at equal worker count\n", rep.Speedup)
	}
	if rep.SLO != nil {
		for _, o := range rep.SLO.Objectives {
			fmt.Fprintf(stderr, "sgdload: slo %-24s burn %.2f fast / %.2f slow (threshold %.1f, alerting=%v)\n",
				o.Name, o.FastBurn, o.SlowBurn, rep.SLO.BurnThreshold, o.Alerting)
		}
	}
	if *expAlert != "" {
		alerting := rep.SLO != nil && rep.SLO.Alerting
		if want := *expAlert == "fire"; alerting != want {
			fmt.Fprintf(stderr, "sgdload: expected SLO alert state %q, server is alerting=%v\n", *expAlert, alerting)
			emit(stderr, &rep, "-")
			return 1
		}
	}
	if err := emit(stdout, &rep, *outPath); err != nil {
		fmt.Fprintf(stderr, "sgdload: %v\n", err)
		return 1
	}
	return 0
}

// emit writes the report JSON to path ("-" = w).
func emit(w io.Writer, rep *report, path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" || path == "" {
		_, err = w.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// quantiles fills a runReport's latency fields from raw seconds samples.
func (r *runReport) quantiles(lat []float64) {
	if len(lat) == 0 {
		return
	}
	sort.Float64s(lat)
	at := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i] * 1e3
	}
	r.LatencyP50Ms = at(0.50)
	r.LatencyP90Ms = at(0.90)
	r.LatencyP99Ms = at(0.99)
	r.LatencyMaxMs = lat[len(lat)-1] * 1e3
	var sum float64
	for _, v := range lat {
		sum += v
	}
	r.LatencyMeanMs = sum / float64(len(lat)) * 1e3
}

// payloads pre-renders dataset rows as /predict JSON bodies.
func payloads(ds *data.Dataset, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		cols, vals := ds.X.Row(rng.Intn(ds.N()))
		body, _ := json.Marshal(map[string]any{"indices": cols, "values": vals})
		out[i] = body
	}
	return out
}

// runHTTP measures one closed- or open-loop run against a live sgdserve.
func runHTTP(ds *data.Dataset, target string, conc int, rate float64, dur time.Duration, seed int64) (report, error) {
	target = strings.TrimSuffix(target, "/")
	health, err := fetchHealth(target)
	if err != nil {
		return report{}, err
	}
	bodies := payloads(ds, 256, seed)
	client := &http.Client{Timeout: 30 * time.Second}

	var (
		sent, ok, rejected, errs atomic.Int64
		traced, nextID           atomic.Int64
		mu                       sync.Mutex
		lat                      []float64
	)
	shoot := func(body []byte) {
		// Every request carries a unique client-minted trace ID, so server-
		// side span trees (sgdserve -spans) stitch back to this load run.
		id := span.ID(uint64(seed)<<32 + uint64(nextID.Add(1))).String()
		req, err := http.NewRequest(http.MethodPost, target+"/predict", bytes.NewReader(body))
		if err != nil {
			errs.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Trace-Id", id)
		start := time.Now()
		resp, err := client.Do(req)
		el := time.Since(start).Seconds()
		if err != nil {
			errs.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-Trace-Id") == id {
			traced.Add(1)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			ok.Add(1)
			mu.Lock()
			lat = append(lat, el)
			mu.Unlock()
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected.Add(1)
		default:
			errs.Add(1)
		}
	}

	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	mode := "closed"
	if rate > 0 {
		mode = "open"
		tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer tick.Stop()
		i := 0
		for now := range tick.C {
			if now.After(deadline) {
				break
			}
			sent.Add(1)
			wg.Add(1)
			go func(b []byte) { defer wg.Done(); shoot(b) }(bodies[i%len(bodies)])
			i++
		}
	} else {
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; time.Now().Before(deadline); i++ {
					sent.Add(1)
					shoot(bodies[i%len(bodies)])
				}
			}(c)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rr := runReport{
		Mode: mode, DurationS: elapsed,
		Sent: sent.Load(), OK: ok.Load(), Rejected: rejected.Load(), Errors: errs.Load(),
		Traced:        traced.Load(),
		ThroughputRPS: float64(ok.Load()) / elapsed,
	}
	rr.quantiles(lat)
	rep := report{Target: target, Server: health, Runs: []runReport{rr}}
	rep.SLO = fetchSLO(target)
	return rep, nil
}

// fetchSLO embeds the server's burn-rate evaluation in the report. Best
// effort: a server without the /slo endpoint just leaves the field empty
// (-expect-alert then treats it as not alerting).
func fetchSLO(target string) *span.Report {
	resp, err := http.Get(target + "/slo")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var rep span.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil
	}
	return &rep
}

// fetchHealth embeds the server identity in the report.
func fetchHealth(target string) (*serve.Health, error) {
	resp, err := http.Get(target + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("fetch %s/healthz: %w", target, err)
	}
	defer resp.Body.Close()
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("parse /healthz: %w", err)
	}
	if h.Status != "ok" {
		return nil, fmt.Errorf("server not ready: status %q", h.Status)
	}
	return &h, nil
}

// runInproc trains a covtype-style LR and measures the same serving core
// config twice — batched and MaxBatch=1 — at equal pool worker count.
func runInproc(ds *data.Dataset, conc, workers, maxBatch, pretrain int, dur time.Duration, seed int64) report {
	m := model.NewLR(ds.D())
	w := m.InitParams(seed)
	eng := core.NewHogwild(m, ds, 0.05, 4)
	core.Seed(eng, seed)
	for e := 0; e < pretrain; e++ {
		eng.RunEpoch(w)
	}
	store := serve.NewStore()
	store.PublishWeights(w, serve.Snapshot{
		Model: m.Name(), Dim: ds.D(),
		Epoch: pretrain, Loss: model.MeanLoss(m, w, ds),
		Fingerprint: core.Fingerprint{
			Engine: eng.Name(), Model: m.Name(), Dataset: ds.Name,
			N: ds.N(), Threads: 4, Seed: seed,
		},
	})

	measure := func(mode string, batch int) runReport {
		// Both phases run the full production serving stack — including the
		// per-batch obs instrumentation sgdserve always has on — so the only
		// difference between them is MaxBatch.
		agg := obs.NewAggregator()
		c := serve.NewCore(m, store, serve.Config{
			MaxBatch: batch, MaxDelay: 2 * time.Millisecond,
			QueueDepth: 8 * conc, Workers: workers,
			Rec: agg.Run(mode, ds.Name),
		})
		defer c.Close()
		var (
			ok, rejected, errs atomic.Int64
			mu                 sync.Mutex
			lat                []float64
		)
		deadline := time.Now().Add(dur)
		start := time.Now()
		var wg sync.WaitGroup
		for k := 0; k < conc; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(k)))
				var myLat []float64
				for time.Now().Before(deadline) {
					cols, vals := ds.X.Row(rng.Intn(ds.N()))
					t0 := time.Now()
					_, err := c.Predict(cols, vals)
					switch err {
					case nil:
						ok.Add(1)
						myLat = append(myLat, time.Since(t0).Seconds())
					case serve.ErrOverloaded:
						rejected.Add(1)
					default:
						errs.Add(1)
					}
				}
				mu.Lock()
				lat = append(lat, myLat...)
				mu.Unlock()
			}(k)
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		rr := runReport{
			Mode: mode, DurationS: elapsed,
			Sent: ok.Load() + rejected.Load() + errs.Load(),
			OK:   ok.Load(), Rejected: rejected.Load(), Errors: errs.Load(),
			ThroughputRPS: float64(ok.Load()) / elapsed,
			AvgBatch:      c.Stats().Snapshot().AvgBatch,
		}
		rr.quantiles(lat)
		return rr
	}

	batched := measure("inproc-batched", maxBatch)
	unbatched := measure("inproc-unbatched", 1)

	sn := store.Load()
	health := &serve.Health{
		Status: "ok", Model: sn.Model, ModelVersion: sn.Version,
		Epoch: sn.Epoch, Loss: sn.Loss,
		Fingerprint: sn.Fingerprint.String(), FingerprintKey: sn.Fingerprint.Key(),
		MaxBatch: maxBatch, Workers: workers,
	}
	rep := report{Server: health, Runs: []runReport{batched, unbatched}}
	if unbatched.ThroughputRPS > 0 {
		rep.Speedup = batched.ThroughputRPS / unbatched.ThroughputRPS
	}
	return rep
}

// checkReport asserts the sanity the smoke gate relies on.
func checkReport(rep *report, inproc bool, minSpeedup float64) error {
	if len(rep.Runs) == 0 {
		return fmt.Errorf("no runs measured")
	}
	for _, r := range rep.Runs {
		if r.OK == 0 {
			return fmt.Errorf("%s: no request succeeded", r.Mode)
		}
		if r.Errors > 0 {
			return fmt.Errorf("%s: %d requests errored", r.Mode, r.Errors)
		}
		if r.OK+r.Rejected+r.Errors != r.Sent && !inproc {
			return fmt.Errorf("%s: %d sent but %d accounted for", r.Mode,
				r.Sent, r.OK+r.Rejected+r.Errors)
		}
		if r.ThroughputRPS <= 0 {
			return fmt.Errorf("%s: nonpositive throughput", r.Mode)
		}
		if r.LatencyP50Ms > r.LatencyP99Ms || r.LatencyP99Ms > r.LatencyMaxMs {
			return fmt.Errorf("%s: quantiles out of order (p50 %.3f, p99 %.3f, max %.3f)",
				r.Mode, r.LatencyP50Ms, r.LatencyP99Ms, r.LatencyMaxMs)
		}
	}
	if rep.Server == nil || rep.Server.FingerprintKey == "" {
		return fmt.Errorf("report carries no server fingerprint")
	}
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		return fmt.Errorf("batched speedup %.2fx below required %.2fx", rep.Speedup, minSpeedup)
	}
	return nil
}
