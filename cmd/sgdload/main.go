// Command sgdload drives load at an sgdserve instance (or an in-process
// serving core) and writes a JSON latency/throughput report.
//
// Usage:
//
//	sgdload -target http://localhost:8080 [-conc 8 | -rate 500] \
//	        [-duration 5s] [-dataset covtype] [-maxn 2000] [-out report.json] [-check]
//	sgdload -inproc [-duration 2s] [-conc 64] [-workers 0] [-max-batch 64] \
//	        [-out report.json] [-check] [-min-speedup 2]
//	sgdload -quant-ab [-duration 2s] [-conc 64] [-workers 0] [-max-batch 64] \
//	        [-out report.json] [-check] [-expect-speedup 0.8]
//
// Four modes:
//
//   - Closed loop (-conc N): N clients each keep exactly one request in
//     flight; throughput is whatever the server sustains.
//   - Open loop (-rate R): requests fire at R/s regardless of completions,
//     exposing queueing collapse the closed loop hides.
//   - In-process A/B (-inproc): trains a small covtype LR, then drives the
//     serving core directly (no HTTP framing) twice at the same pool worker
//     count — micro-batching enabled vs MaxBatch=1 — and reports the
//     batched/unbatched throughput ratio. This is the repo's measured
//     evidence for the serving half of the paper's batching tradeoff; `make
//     serve-smoke` gates on speedup >= 2.
//   - Quantised A/B (-quant-ab): the same in-process harness, but the two
//     phases differ only in Config.Quantized — float64 scoring vs the int8
//     path of DESIGN §14 — at equal batch and worker settings. The report
//     adds a serial accuracy probe over the whole dataset: max/mean
//     |quant − float| score delta, analytic bound violations, and an FNV-1a
//     checksum of the delta stream (same snapshot + dataset => same
//     checksum, so quantiser drift is visible even inside the limits).
//     -expect-speedup gates the quantised/float throughput ratio; serving
//     requests are dispatch-dominated, so CI asserts "no throughput cost"
//     (~1x) here and leaves the >=1.5x kernel win to epochbench's gate.
//
// The report embeds the server's /healthz payload (in-process: the
// snapshot's own identity), so the core.Fingerprint discipline applies:
// reports are only comparable when the fingerprints match. -check makes
// sanity assertions (every request accounted for, nonzero throughput,
// ordered quantiles) and -min-speedup gates the A/B ratio; failures exit 1.
// Exit status: 0 ok, 1 load or check failure, 2 usage error.
//
// HTTP requests carry unique client-minted X-Trace-Id headers, so a server
// running with -spans exports span trees stitched to this load run, and the
// report embeds the server's /slo burn-rate evaluation after the run.
// -expect-alert fire|quiet turns that into an assertion — the span-smoke CI
// job drives a storm-faulted server expecting fire and a clean one expecting
// quiet.
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// runReport is one measured load phase.
type runReport struct {
	Mode          string  `json:"mode"` // closed|open|inproc-batched|inproc-unbatched
	DurationS     float64 `json:"duration_s"`
	Sent          int64   `json:"sent"`
	OK            int64   `json:"ok"`
	Rejected      int64   `json:"rejected"` // HTTP 429 / ErrOverloaded
	Errors        int64   `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	Traced        int64   `json:"traced,omitempty"` // responses that echoed our X-Trace-Id
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	AvgBatch      float64 `json:"avg_batch,omitempty"` // in-process only
}

// quantABReport is the quantised-vs-float serving comparison (-quant-ab):
// two full serving phases differing only in Config.Quantized, plus a serial
// accuracy probe over the whole dataset under the served snapshot.
type quantABReport struct {
	// Speedup is quantised/float served throughput at equal worker count.
	// At serving dimensions a request is dispatch-dominated, so this hovers
	// near 1; the CI assertion (-expect-speedup) gates "quantisation does
	// not cost serving throughput", while the kernel-level >=1.5x win is
	// measured where it lives, in epochbench's quant_score section.
	Speedup float64 `json:"speedup"`
	// MaxAbsDelta / MeanAbsDelta are |quant − float| score deltas over the
	// probe; BoundViolations counts rows exceeding the analytic envelope.
	MaxAbsDelta     float64 `json:"max_abs_delta"`
	MeanAbsDelta    float64 `json:"mean_abs_delta"`
	BoundViolations int     `json:"bound_violations"`
	// DeltaChecksum is FNV-1a over the probe's delta bit patterns — two
	// runs on the same snapshot and dataset must produce the same value,
	// so a drifting quantiser shows up as a checksum change even when the
	// summary stats stay inside their limits.
	DeltaChecksum string `json:"delta_checksum"`
	ProbeRows     int    `json:"probe_rows"`
}

// report is the JSON document sgdload writes.
type report struct {
	Target    string         `json:"target,omitempty"`
	Server    *serve.Health  `json:"server,omitempty"` // /healthz at run start
	Runs      []runReport    `json:"runs"`
	Speedup   float64        `json:"batched_speedup,omitempty"`
	Quant     *quantABReport `json:"quant_ab,omitempty"`
	SLO       *span.Report   `json:"slo,omitempty"` // /slo after the run (HTTP mode)
	CheckedOK bool           `json:"checked_ok,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgdload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target     = fs.String("target", "http://localhost:8080", "sgdserve base URL")
		conc       = fs.Int("conc", 8, "closed-loop concurrent clients (also the in-process caller count)")
		rate       = fs.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
		duration   = fs.Duration("duration", 5*time.Second, "measurement length per run")
		dataset    = fs.String("dataset", "covtype", "dataset whose rows become request payloads")
		maxN       = fs.Int("maxn", 2000, "examples generated for payloads (and in-process training)")
		seed       = fs.Int64("seed", 1, "payload sampling (and in-process training) seed")
		inproc     = fs.Bool("inproc", false, "run the in-process batched vs unbatched A/B instead of HTTP load")
		quantAB    = fs.Bool("quant-ab", false, "run the in-process quantised vs float serving A/B instead of HTTP load")
		workers    = fs.Int("workers", 0, "in-process pool workers per dispatch, equal in both phases (0 = pool size)")
		maxBatch   = fs.Int("max-batch", 64, "in-process batched phase's micro-batch bound")
		pretrain   = fs.Int("pretrain", 3, "in-process Hogwild epochs before measuring")
		outPath    = fs.String("out", "-", "write the JSON report here (- = stdout)")
		check      = fs.Bool("check", false, "assert report sanity; exit 1 on violation")
		minSpeedup = fs.Float64("min-speedup", 0, "with -check and -inproc: minimum batched/unbatched throughput ratio")
		expSpeedup = fs.Float64("expect-speedup", 0, "with -check and -quant-ab: minimum quantised/float throughput ratio")
		expAlert   = fs.String("expect-alert", "", "assert the server's /slo state after the run: fire|quiet (exit 1 on mismatch)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *expAlert != "" && *expAlert != "fire" && *expAlert != "quiet" {
		fmt.Fprintf(stderr, "sgdload: -expect-alert %q: want fire or quiet\n", *expAlert)
		return 2
	}
	if *expAlert != "" && (*inproc || *quantAB) {
		fmt.Fprintln(stderr, "sgdload: -expect-alert needs an HTTP target (/slo lives on the server)")
		return 2
	}
	if *inproc && *quantAB {
		fmt.Fprintln(stderr, "sgdload: -inproc and -quant-ab are separate A/Bs; pick one")
		return 2
	}

	spec, err := data.Lookup(*dataset)
	if err != nil {
		fmt.Fprintf(stderr, "sgdload: %v\n", err)
		return 2
	}
	if *maxN > 0 && *maxN < spec.N {
		spec = spec.Scaled(float64(*maxN) / float64(spec.N))
	}
	ds := data.Generate(spec)

	var rep report
	switch {
	case *inproc:
		rep = runInproc(ds, *conc, *workers, *maxBatch, *pretrain, *duration, *seed)
	case *quantAB:
		rep = runQuantAB(ds, *conc, *workers, *maxBatch, *pretrain, *duration, *seed)
	default:
		rep, err = runHTTP(ds, *target, *conc, *rate, *duration, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "sgdload: %v\n", err)
			return 1
		}
	}

	if *check {
		if err := checkReport(&rep, *inproc || *quantAB, *minSpeedup, *expSpeedup); err != nil {
			fmt.Fprintf(stderr, "sgdload: check failed: %v\n", err)
			emit(stderr, &rep, "-")
			return 1
		}
		rep.CheckedOK = true
	}
	for _, r := range rep.Runs {
		fmt.Fprintf(stderr, "sgdload: %-16s %8.0f req/s  p50 %6.3fms  p99 %6.3fms  (%d ok, %d rejected, %d errors)\n",
			r.Mode, r.ThroughputRPS, r.LatencyP50Ms, r.LatencyP99Ms, r.OK, r.Rejected, r.Errors)
		if r.Traced > 0 {
			fmt.Fprintf(stderr, "sgdload: %-16s %d responses carried our trace IDs (server spans stitch to this run)\n",
				r.Mode, r.Traced)
		}
	}
	if rep.Speedup > 0 {
		fmt.Fprintf(stderr, "sgdload: batched/unbatched speedup %.2fx at equal worker count\n", rep.Speedup)
	}
	if rep.Quant != nil {
		fmt.Fprintf(stderr, "sgdload: quantised/float speedup %.2fx, max score delta %.3g over %d rows (%d bound violations, checksum %s)\n",
			rep.Quant.Speedup, rep.Quant.MaxAbsDelta, rep.Quant.ProbeRows,
			rep.Quant.BoundViolations, rep.Quant.DeltaChecksum)
	}
	if rep.SLO != nil {
		for _, o := range rep.SLO.Objectives {
			fmt.Fprintf(stderr, "sgdload: slo %-24s burn %.2f fast / %.2f slow (threshold %.1f, alerting=%v)\n",
				o.Name, o.FastBurn, o.SlowBurn, rep.SLO.BurnThreshold, o.Alerting)
		}
	}
	if *expAlert != "" {
		alerting := rep.SLO != nil && rep.SLO.Alerting
		if want := *expAlert == "fire"; alerting != want {
			fmt.Fprintf(stderr, "sgdload: expected SLO alert state %q, server is alerting=%v\n", *expAlert, alerting)
			emit(stderr, &rep, "-")
			return 1
		}
	}
	if err := emit(stdout, &rep, *outPath); err != nil {
		fmt.Fprintf(stderr, "sgdload: %v\n", err)
		return 1
	}
	return 0
}

// emit writes the report JSON to path ("-" = w).
func emit(w io.Writer, rep *report, path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if path == "-" || path == "" {
		_, err = w.Write(buf)
		return err
	}
	return os.WriteFile(path, buf, 0o644)
}

// quantiles fills a runReport's latency fields from raw seconds samples.
func (r *runReport) quantiles(lat []float64) {
	if len(lat) == 0 {
		return
	}
	sort.Float64s(lat)
	at := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i] * 1e3
	}
	r.LatencyP50Ms = at(0.50)
	r.LatencyP90Ms = at(0.90)
	r.LatencyP99Ms = at(0.99)
	r.LatencyMaxMs = lat[len(lat)-1] * 1e3
	var sum float64
	for _, v := range lat {
		sum += v
	}
	r.LatencyMeanMs = sum / float64(len(lat)) * 1e3
}

// payloads pre-renders dataset rows as /predict JSON bodies.
func payloads(ds *data.Dataset, n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		cols, vals := ds.X.Row(rng.Intn(ds.N()))
		body, _ := json.Marshal(map[string]any{"indices": cols, "values": vals})
		out[i] = body
	}
	return out
}

// runHTTP measures one closed- or open-loop run against a live sgdserve.
func runHTTP(ds *data.Dataset, target string, conc int, rate float64, dur time.Duration, seed int64) (report, error) {
	target = strings.TrimSuffix(target, "/")
	health, err := fetchHealth(target)
	if err != nil {
		return report{}, err
	}
	bodies := payloads(ds, 256, seed)
	client := &http.Client{Timeout: 30 * time.Second}

	var (
		sent, ok, rejected, errs atomic.Int64
		traced, nextID           atomic.Int64
		mu                       sync.Mutex
		lat                      []float64
	)
	shoot := func(body []byte) {
		// Every request carries a unique client-minted trace ID, so server-
		// side span trees (sgdserve -spans) stitch back to this load run.
		id := span.ID(uint64(seed)<<32 + uint64(nextID.Add(1))).String()
		req, err := http.NewRequest(http.MethodPost, target+"/predict", bytes.NewReader(body))
		if err != nil {
			errs.Add(1)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Trace-Id", id)
		start := time.Now()
		resp, err := client.Do(req)
		el := time.Since(start).Seconds()
		if err != nil {
			errs.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-Trace-Id") == id {
			traced.Add(1)
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			ok.Add(1)
			mu.Lock()
			lat = append(lat, el)
			mu.Unlock()
		case resp.StatusCode == http.StatusTooManyRequests:
			rejected.Add(1)
		default:
			errs.Add(1)
		}
	}

	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	mode := "closed"
	if rate > 0 {
		mode = "open"
		tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer tick.Stop()
		i := 0
		for now := range tick.C {
			if now.After(deadline) {
				break
			}
			sent.Add(1)
			wg.Add(1)
			go func(b []byte) { defer wg.Done(); shoot(b) }(bodies[i%len(bodies)])
			i++
		}
	} else {
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; time.Now().Before(deadline); i++ {
					sent.Add(1)
					shoot(bodies[i%len(bodies)])
				}
			}(c)
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rr := runReport{
		Mode: mode, DurationS: elapsed,
		Sent: sent.Load(), OK: ok.Load(), Rejected: rejected.Load(), Errors: errs.Load(),
		Traced:        traced.Load(),
		ThroughputRPS: float64(ok.Load()) / elapsed,
	}
	rr.quantiles(lat)
	rep := report{Target: target, Server: health, Runs: []runReport{rr}}
	rep.SLO = fetchSLO(target)
	return rep, nil
}

// fetchSLO embeds the server's burn-rate evaluation in the report. Best
// effort: a server without the /slo endpoint just leaves the field empty
// (-expect-alert then treats it as not alerting).
func fetchSLO(target string) *span.Report {
	resp, err := http.Get(target + "/slo")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var rep span.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil
	}
	return &rep
}

// fetchHealth embeds the server identity in the report.
func fetchHealth(target string) (*serve.Health, error) {
	resp, err := http.Get(target + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("fetch %s/healthz: %w", target, err)
	}
	defer resp.Body.Close()
	var h serve.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("parse /healthz: %w", err)
	}
	if h.Status != "ok" {
		return nil, fmt.Errorf("server not ready: status %q", h.Status)
	}
	return &h, nil
}

// trainedServeStore trains a small LR and publishes its snapshot — the
// shared setup of both in-process A/Bs.
func trainedServeStore(ds *data.Dataset, pretrain int, seed int64) (*model.LR, []float64, *serve.Store) {
	m := model.NewLR(ds.D())
	w := m.InitParams(seed)
	eng := core.NewHogwild(m, ds, 0.05, 4)
	core.Seed(eng, seed)
	for e := 0; e < pretrain; e++ {
		eng.RunEpoch(w)
	}
	store := serve.NewStore()
	store.PublishWeights(w, serve.Snapshot{
		Model: m.Name(), Dim: ds.D(),
		Epoch: pretrain, Loss: model.MeanLoss(m, w, ds),
		Fingerprint: core.Fingerprint{
			Engine: eng.Name(), Model: m.Name(), Dataset: ds.Name,
			N: ds.N(), Threads: 4, Seed: seed,
		},
	})
	return m, w, store
}

// measureServe drives one serving core configuration with conc closed-loop
// callers for dur. Every phase runs the full production stack — including
// the per-batch obs instrumentation sgdserve always has on — so phases of
// an A/B differ only in the Config fields the caller varies.
func measureServe(m model.Scorer, store *serve.Store, ds *data.Dataset, mode string, cfg serve.Config, conc int, dur time.Duration, seed int64) runReport {
	agg := obs.NewAggregator()
	cfg.Rec = agg.Run(mode, ds.Name)
	c := serve.NewCore(m, store, cfg)
	defer c.Close()
	var (
		ok, rejected, errs atomic.Int64
		mu                 sync.Mutex
		lat                []float64
	)
	deadline := time.Now().Add(dur)
	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < conc; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(k)))
			var myLat []float64
			for time.Now().Before(deadline) {
				cols, vals := ds.X.Row(rng.Intn(ds.N()))
				t0 := time.Now()
				_, err := c.Predict(cols, vals)
				switch err {
				case nil:
					ok.Add(1)
					myLat = append(myLat, time.Since(t0).Seconds())
				case serve.ErrOverloaded:
					rejected.Add(1)
				default:
					errs.Add(1)
				}
			}
			mu.Lock()
			lat = append(lat, myLat...)
			mu.Unlock()
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	rr := runReport{
		Mode: mode, DurationS: elapsed,
		Sent: ok.Load() + rejected.Load() + errs.Load(),
		OK:   ok.Load(), Rejected: rejected.Load(), Errors: errs.Load(),
		ThroughputRPS: float64(ok.Load()) / elapsed,
		AvgBatch:      c.Stats().Snapshot().AvgBatch,
	}
	rr.quantiles(lat)
	return rr
}

// inprocHealth renders the served snapshot's identity the way /healthz would.
func inprocHealth(store *serve.Store, maxBatch, workers int, quantized bool) *serve.Health {
	sn := store.Load()
	return &serve.Health{
		Status: "ok", Model: sn.Model, ModelVersion: sn.Version,
		Epoch: sn.Epoch, Loss: sn.Loss,
		Fingerprint: sn.Fingerprint.String(), FingerprintKey: sn.Fingerprint.Key(),
		MaxBatch: maxBatch, Workers: workers, Quantized: quantized,
	}
}

// runInproc trains a covtype-style LR and measures the same serving core
// config twice — batched and MaxBatch=1 — at equal pool worker count.
func runInproc(ds *data.Dataset, conc, workers, maxBatch, pretrain int, dur time.Duration, seed int64) report {
	m, _, store := trainedServeStore(ds, pretrain, seed)
	cfg := func(batch int) serve.Config {
		return serve.Config{
			MaxBatch: batch, MaxDelay: 2 * time.Millisecond,
			QueueDepth: 8 * conc, Workers: workers,
		}
	}
	batched := measureServe(m, store, ds, "inproc-batched", cfg(maxBatch), conc, dur, seed)
	unbatched := measureServe(m, store, ds, "inproc-unbatched", cfg(1), conc, dur, seed)

	rep := report{Server: inprocHealth(store, maxBatch, workers, false), Runs: []runReport{batched, unbatched}}
	if unbatched.ThroughputRPS > 0 {
		rep.Speedup = batched.ThroughputRPS / unbatched.ThroughputRPS
	}
	return rep
}

// runQuantAB trains the same LR and measures the serving core twice at equal
// batch and worker settings — float64 scoring vs the int8 quantised path —
// then probes every dataset row through both scoring paths serially for the
// accuracy half of the report (max/mean delta, analytic bound violations,
// and a deterministic checksum of the delta stream).
func runQuantAB(ds *data.Dataset, conc, workers, maxBatch, pretrain int, dur time.Duration, seed int64) report {
	m, w, store := trainedServeStore(ds, pretrain, seed)
	cfg := func(quantized bool) serve.Config {
		return serve.Config{
			MaxBatch: maxBatch, MaxDelay: 2 * time.Millisecond,
			QueueDepth: 8 * conc, Workers: workers, Quantized: quantized,
		}
	}
	// Float phase first: the quantised core flips the store to attach int8
	// twins at publish, and keeping the float phase free of them keeps the
	// two phases' snapshots byte-identical on the float side.
	float := measureServe(m, store, ds, "inproc-float", cfg(false), conc, dur, seed)
	quant := measureServe(m, store, ds, "inproc-quant", cfg(true), conc, dur, seed)

	qab := &quantABReport{ProbeRows: ds.N()}
	qw := model.Quantize(w)
	scr := m.NewScratch()
	sum := fnv.New64a()
	var buf [8]byte
	var totalDelta float64
	for i := 0; i < ds.N(); i++ {
		fs := m.Score(w, ds, i, scr)
		qs := m.QuantScore(qw, ds, i)
		d := math.Abs(qs - fs)
		totalDelta += d
		if d > qab.MaxAbsDelta {
			qab.MaxAbsDelta = d
		}
		if d > qw.RowErrorBound(ds.X, i)*(1+1e-9)+1e-12 {
			qab.BoundViolations++
		}
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(qs-fs))
		sum.Write(buf[:])
	}
	if ds.N() > 0 {
		qab.MeanAbsDelta = totalDelta / float64(ds.N())
	}
	qab.DeltaChecksum = fmt.Sprintf("%016x", sum.Sum64())
	if float.ThroughputRPS > 0 {
		qab.Speedup = quant.ThroughputRPS / float.ThroughputRPS
	}

	rep := report{Server: inprocHealth(store, maxBatch, workers, true), Runs: []runReport{float, quant}}
	rep.Quant = qab
	return rep
}

// checkReport asserts the sanity the smoke gate relies on.
func checkReport(rep *report, inproc bool, minSpeedup, expectSpeedup float64) error {
	if len(rep.Runs) == 0 {
		return fmt.Errorf("no runs measured")
	}
	for _, r := range rep.Runs {
		if r.OK == 0 {
			return fmt.Errorf("%s: no request succeeded", r.Mode)
		}
		if r.Errors > 0 {
			return fmt.Errorf("%s: %d requests errored", r.Mode, r.Errors)
		}
		if r.OK+r.Rejected+r.Errors != r.Sent && !inproc {
			return fmt.Errorf("%s: %d sent but %d accounted for", r.Mode,
				r.Sent, r.OK+r.Rejected+r.Errors)
		}
		if r.ThroughputRPS <= 0 {
			return fmt.Errorf("%s: nonpositive throughput", r.Mode)
		}
		if r.LatencyP50Ms > r.LatencyP99Ms || r.LatencyP99Ms > r.LatencyMaxMs {
			return fmt.Errorf("%s: quantiles out of order (p50 %.3f, p99 %.3f, max %.3f)",
				r.Mode, r.LatencyP50Ms, r.LatencyP99Ms, r.LatencyMaxMs)
		}
	}
	if rep.Server == nil || rep.Server.FingerprintKey == "" {
		return fmt.Errorf("report carries no server fingerprint")
	}
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		return fmt.Errorf("batched speedup %.2fx below required %.2fx", rep.Speedup, minSpeedup)
	}
	if rep.Quant != nil && rep.Quant.BoundViolations > 0 {
		return fmt.Errorf("%d quantised scores exceed the analytic error bound", rep.Quant.BoundViolations)
	}
	if expectSpeedup > 0 {
		if rep.Quant == nil {
			return fmt.Errorf("-expect-speedup needs the -quant-ab report")
		}
		if rep.Quant.Speedup < expectSpeedup {
			return fmt.Errorf("quantised/float speedup %.2fx below required %.2fx",
				rep.Quant.Speedup, expectSpeedup)
		}
	}
	return nil
}
