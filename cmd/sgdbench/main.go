// Command sgdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	sgdbench -experiment table1|table2|table3|fig6|fig7|fig8|fig9|all \
//	         [-maxn 4000] [-datasets covtype,w8a] [-tasks lr,svm,mlp] \
//	         [-epochs 300] [-tol 0.01] [-v] [-quiet] \
//	         [-trace run.jsonl] [-obs] [-debug-addr :6060]
//
// Times are modeled device seconds for the paper's hardware (2x Xeon
// E5-2660 v4, Tesla K80) priced at the full Table I dataset sizes;
// statistical efficiency (epochs) is measured by actually running every
// configuration at the generated scale.
//
// Observability: -trace streams one JSONL event per (engine, dataset, epoch)
// for inspection with sgdtrace; -obs prints per-engine phase/counter
// summaries after the experiments; -debug-addr serves expvar ("sgd_obs"),
// net/http/pprof and a Prometheus /metrics endpoint while the run executes.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgdbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all", "table1|table2|table3|fig6|fig7|fig8|fig9|tolsweep|all")
		maxN       = fs.Int("maxn", 4000, "max examples generated per dataset")
		datasets   = fs.String("datasets", "", "comma-separated dataset filter (default all)")
		tasks      = fs.String("tasks", "", "comma-separated task filter: lr,svm,mlp (default all)")
		epochs     = fs.Int("epochs", 300, "max epochs per convergence drive")
		tol        = fs.Float64("tol", 0.01, "convergence tolerance relative to the optimal loss")
		verbose    = fs.Bool("v", false, "log progress")
		quiet      = fs.Bool("quiet", false, "suppress progress logging even with -v")
		curveDir   = fs.String("curves", "", "directory for Fig 7 loss-curve CSVs")
		repeats    = fs.Int("repeats", 1, "repetitions of each asynchronous drive (paper: >=10)")
		tracePath  = fs.String("trace", "", "write a JSONL observability trace to this file (inspect with sgdtrace)")
		obsSummary = fs.Bool("obs", false, "print per-engine phase/counter summaries after the run")
		debugAddr  = fs.String("debug-addr", "", "serve expvar, pprof and Prometheus /metrics on this address (e.g. :6060)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := bench.Options{
		MaxN:      *maxN,
		MaxEpochs: *epochs,
		Tol:       *tol,
		Verbose:   *verbose,
		Quiet:     *quiet,
		Out:       stdout,
		CurveDir:  *curveDir,
		Repeats:   *repeats,
		TracePath: *tracePath,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *tasks != "" {
		opts.Tasks = strings.Split(*tasks, ",")
	}
	if *tracePath != "" {
		// Fail with a clean error on an unwritable path instead of the
		// harness panic; New reopens (and truncates) the same file.
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(stderr, "sgdbench: cannot create trace: %v\n", err)
			return 1
		}
		f.Close()
	}
	h := bench.New(opts)

	if *debugAddr != "" {
		// expvar and net/http/pprof register on the default mux; add the
		// Prometheus-style snapshot of the harness aggregator next to them.
		// Publish panics on a duplicate name, so re-entrant runs (tests)
		// keep the first registration.
		if expvar.Get("sgd_obs") == nil {
			expvar.Publish("sgd_obs", expvar.Func(h.Aggregator().Export))
		}
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			fmt.Fprint(w, h.Aggregator().Snapshot())
		})
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(stderr, "sgdbench: debug server: %v\n", err)
			}
		}()
	}

	runOne := func(name string) bool {
		switch name {
		case "table1":
			h.Table1()
		case "table2":
			h.Table2()
		case "table3":
			h.Table3()
		case "fig6":
			h.Fig6()
		case "fig7":
			h.Fig7()
		case "fig8":
			h.Fig8()
		case "fig9":
			h.Fig9()
		case "tolsweep":
			h.TolSweep()
		default:
			fmt.Fprintf(stderr, "sgdbench: unknown experiment %q\n", name)
			return false
		}
		return true
	}
	if *experiment == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9"} {
			runOne(name)
		}
	} else {
		for _, name := range strings.Split(*experiment, ",") {
			if !runOne(name) {
				h.Close()
				return 2
			}
		}
	}

	if *obsSummary {
		fmt.Fprintln(stdout, "Observability summary")
		fmt.Fprint(stdout, h.Aggregator().Summary())
	}
	if err := h.Close(); err != nil {
		fmt.Fprintf(stderr, "sgdbench: closing trace: %v\n", err)
		return 1
	}
	return 0
}
