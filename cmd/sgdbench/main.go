// Command sgdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	sgdbench -experiment table1|table2|table3|fig6|fig7|fig8|fig9|all \
//	         [-maxn 4000] [-datasets covtype,w8a] [-tasks lr,svm,mlp] \
//	         [-epochs 300] [-tol 0.01] [-v]
//
// Times are modeled device seconds for the paper's hardware (2x Xeon
// E5-2660 v4, Tesla K80) priced at the full Table I dataset sizes;
// statistical efficiency (epochs) is measured by actually running every
// configuration at the generated scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|table2|table3|fig6|fig7|fig8|fig9|tolsweep|all")
		maxN       = flag.Int("maxn", 4000, "max examples generated per dataset")
		datasets   = flag.String("datasets", "", "comma-separated dataset filter (default all)")
		tasks      = flag.String("tasks", "", "comma-separated task filter: lr,svm,mlp (default all)")
		epochs     = flag.Int("epochs", 300, "max epochs per convergence drive")
		tol        = flag.Float64("tol", 0.01, "convergence tolerance relative to the optimal loss")
		verbose    = flag.Bool("v", false, "log progress")
		curveDir   = flag.String("curves", "", "directory for Fig 7 loss-curve CSVs")
		repeats    = flag.Int("repeats", 1, "repetitions of each asynchronous drive (paper: >=10)")
	)
	flag.Parse()

	opts := bench.Options{
		MaxN:      *maxN,
		MaxEpochs: *epochs,
		Tol:       *tol,
		Verbose:   *verbose,
		Out:       os.Stdout,
		CurveDir:  *curveDir,
		Repeats:   *repeats,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *tasks != "" {
		opts.Tasks = strings.Split(*tasks, ",")
	}
	h := bench.New(opts)

	run := func(name string) {
		switch name {
		case "table1":
			h.Table1()
		case "table2":
			h.Table2()
		case "table3":
			h.Table3()
		case "fig6":
			h.Fig6()
		case "fig7":
			h.Fig7()
		case "fig8":
			h.Fig8()
		case "fig9":
			h.Fig9()
		case "tolsweep":
			h.TolSweep()
		default:
			fmt.Fprintf(os.Stderr, "sgdbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *experiment == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9"} {
			run(name)
		}
		return
	}
	for _, name := range strings.Split(*experiment, ",") {
		run(name)
	}
}
