// Command sgdbench regenerates the paper's tables and figures.
//
// Usage:
//
//	sgdbench -experiment table1|table2|table3|fig6|fig7|fig8|fig9|all \
//	         [-maxn 4000] [-datasets covtype,w8a] [-tasks lr,svm,mlp] \
//	         [-epochs 300] [-tol 0.01] [-v] [-quiet] \
//	         [-trace run.jsonl] [-obs] [-debug-addr :6060]
//
// Times are modeled device seconds for the paper's hardware (2x Xeon
// E5-2660 v4, Tesla K80) priced at the full Table I dataset sizes;
// statistical efficiency (epochs) is measured by actually running every
// configuration at the generated scale.
//
// Observability: -trace streams one JSONL event per (engine, dataset, epoch)
// for inspection with sgdtrace; -obs prints per-engine phase/counter
// summaries after the experiments; -debug-addr serves expvar ("sgd_obs"),
// net/http/pprof and a Prometheus /metrics endpoint while the run executes.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "table1|table2|table3|fig6|fig7|fig8|fig9|tolsweep|all")
		maxN       = flag.Int("maxn", 4000, "max examples generated per dataset")
		datasets   = flag.String("datasets", "", "comma-separated dataset filter (default all)")
		tasks      = flag.String("tasks", "", "comma-separated task filter: lr,svm,mlp (default all)")
		epochs     = flag.Int("epochs", 300, "max epochs per convergence drive")
		tol        = flag.Float64("tol", 0.01, "convergence tolerance relative to the optimal loss")
		verbose    = flag.Bool("v", false, "log progress")
		quiet      = flag.Bool("quiet", false, "suppress progress logging even with -v")
		curveDir   = flag.String("curves", "", "directory for Fig 7 loss-curve CSVs")
		repeats    = flag.Int("repeats", 1, "repetitions of each asynchronous drive (paper: >=10)")
		tracePath  = flag.String("trace", "", "write a JSONL observability trace to this file (inspect with sgdtrace)")
		obsSummary = flag.Bool("obs", false, "print per-engine phase/counter summaries after the run")
		debugAddr  = flag.String("debug-addr", "", "serve expvar, pprof and Prometheus /metrics on this address (e.g. :6060)")
	)
	flag.Parse()

	opts := bench.Options{
		MaxN:      *maxN,
		MaxEpochs: *epochs,
		Tol:       *tol,
		Verbose:   *verbose,
		Quiet:     *quiet,
		Out:       os.Stdout,
		CurveDir:  *curveDir,
		Repeats:   *repeats,
		TracePath: *tracePath,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *tasks != "" {
		opts.Tasks = strings.Split(*tasks, ",")
	}
	if *tracePath != "" {
		// Fail with a clean error on an unwritable path instead of the
		// harness panic; New reopens (and truncates) the same file.
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sgdbench: cannot create trace: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	h := bench.New(opts)

	if *debugAddr != "" {
		// expvar and net/http/pprof register on the default mux; add the
		// Prometheus-style snapshot of the harness aggregator next to them.
		expvar.Publish("sgd_obs", expvar.Func(h.Aggregator().Export))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			fmt.Fprint(w, h.Aggregator().Snapshot())
		})
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "sgdbench: debug server: %v\n", err)
			}
		}()
	}

	run := func(name string) {
		switch name {
		case "table1":
			h.Table1()
		case "table2":
			h.Table2()
		case "table3":
			h.Table3()
		case "fig6":
			h.Fig6()
		case "fig7":
			h.Fig7()
		case "fig8":
			h.Fig8()
		case "fig9":
			h.Fig9()
		case "tolsweep":
			h.TolSweep()
		default:
			fmt.Fprintf(os.Stderr, "sgdbench: unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *experiment == "all" {
		for _, name := range []string{"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9"} {
			run(name)
		}
	} else {
		for _, name := range strings.Split(*experiment, ",") {
			run(name)
		}
	}

	if *obsSummary {
		fmt.Println("Observability summary")
		fmt.Print(h.Aggregator().Summary())
	}
	if err := h.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "sgdbench: closing trace: %v\n", err)
		os.Exit(1)
	}
}
