package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRunTable1WithTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	var stdout, stderr bytes.Buffer
	// table1 prints dataset statistics; table2 actually drives engines, so
	// the trace gets events.
	args := []string{"-experiment", "table1,table2", "-maxn", "150", "-datasets", "w8a",
		"-tasks", "lr", "-epochs", "20", "-trace", trace, "-obs"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Table II") {
		t.Errorf("output missing table headers:\n%s", out)
	}
	if !strings.Contains(out, "Observability summary") {
		t.Errorf("-obs summary missing:\n%s", out)
	}
	events, err := obs.ReadTraceFile(trace)
	if err != nil {
		t.Fatalf("trace unreadable: %v", err)
	}
	if len(events) == 0 {
		t.Error("trace is empty")
	}
}

func TestRunBadInputs(t *testing.T) {
	cases := [][]string{
		{"-experiment", "nosuchexperiment", "-maxn", "120"},
		{"-badflag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit %d, want 2", args, code)
		}
	}
}

func TestRunUnwritableTrace(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-experiment", "table1", "-maxn", "120", "-trace", "/nonexistent/dir/run.jsonl"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Errorf("exit %d, want 1 for unwritable trace path", code)
	}
}
