// Command mdcheck is a link-and-anchor checker for the repository's
// markdown documentation. It walks the given files or directories
// (default: the current directory), extracts inline links from every
// .md file, and verifies that
//
//   - relative file links resolve to an existing file or directory, and
//   - fragment links (#section, FILE.md#section) name a real heading in
//     the target document, using GitHub's heading-slug rules.
//
// External links (http://, https://, mailto:) are not fetched — the tool
// is offline by design so it can run in CI without network access.
//
// Usage:
//
//	mdcheck [-q] [path ...]
//
// Exit status is 0 when every link resolves, 1 when any link is broken,
// 2 on usage errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("mdcheck", flag.ContinueOnError)
	fl.SetOutput(stderr)
	quiet := fl.Bool("q", false, "print only broken links, not the summary")
	if err := fl.Parse(args); err != nil {
		return 2
	}
	roots := fl.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}

	files, err := collect(roots)
	if err != nil {
		fmt.Fprintf(stderr, "mdcheck: %v\n", err)
		return 2
	}
	if len(files) == 0 {
		fmt.Fprintln(stderr, "mdcheck: no markdown files found")
		return 2
	}

	docs := make(map[string]*doc, len(files))
	for _, f := range files {
		d, err := parseFile(f)
		if err != nil {
			fmt.Fprintf(stderr, "mdcheck: %v\n", err)
			return 2
		}
		docs[f] = d
	}

	broken, total := 0, 0
	for _, f := range files {
		for _, l := range docs[f].links {
			total++
			if msg := check(f, l, docs); msg != "" {
				broken++
				fmt.Fprintf(stderr, "%s:%d: %s\n", f, l.line, msg)
			}
		}
	}
	if !*quiet {
		fmt.Fprintf(stdout, "mdcheck: %d files, %d links, %d broken\n",
			len(files), total, broken)
	}
	if broken > 0 {
		return 1
	}
	return 0
}

// collect expands files and directories into a sorted list of .md paths,
// skipping dot-directories (.git, .github holds no docs we link to by
// heading) and vendor-style trees.
func collect(roots []string) ([]string, error) {
	seen := map[string]bool{}
	var files []string
	add := func(p string) {
		p = filepath.Clean(p)
		if !seen[p] {
			seen[p] = true
			files = append(files, p)
		}
	}
	for _, root := range roots {
		info, err := os.Stat(root)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(root)
			continue
		}
		err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if p != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "node_modules") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.EqualFold(filepath.Ext(name), ".md") {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

type link struct {
	target string
	line   int
}

type doc struct {
	anchors map[string]bool
	links   []link
}

// linkRE matches inline links [text](target). Images ![alt](target) match
// too via the optional leading "!", which is what we want — image targets
// must exist as files just the same.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

var codeSpanRE = regexp.MustCompile("`[^`]*`")

func parseFile(path string) (*doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func parse(r io.Reader) (*doc, error) {
	d := &doc{anchors: map[string]bool{}}
	slugCount := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	inFence := false
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		trimmed := strings.TrimSpace(text)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		if strings.HasPrefix(text, "#") {
			level := 0
			for level < len(text) && text[level] == '#' {
				level++
			}
			if level <= 6 && level < len(text) && (text[level] == ' ' || text[level] == '\t') {
				s := slugify(strings.TrimSpace(text[level:]))
				// GitHub disambiguates duplicate headings with -1, -2, ...
				if n := slugCount[s]; n > 0 {
					d.anchors[fmt.Sprintf("%s-%d", s, n)] = true
				} else {
					d.anchors[s] = true
				}
				slugCount[s]++
				continue
			}
		}
		clean := codeSpanRE.ReplaceAllString(text, "``")
		for _, m := range linkRE.FindAllStringSubmatch(clean, -1) {
			d.links = append(d.links, link{target: m[1], line: line})
		}
	}
	return d, sc.Err()
}

// slugify applies GitHub's heading-anchor rules: lowercase, strip inline
// markup ticks, drop everything but letters/digits/spaces/hyphens/underscores,
// spaces become hyphens.
func slugify(heading string) string {
	heading = strings.ReplaceAll(heading, "`", "")
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// check resolves one link found in file; it returns "" when the link is
// fine and a human-readable complaint otherwise.
func check(file string, l link, docs map[string]*doc) string {
	t := l.target
	switch {
	case strings.HasPrefix(t, "http://"), strings.HasPrefix(t, "https://"),
		strings.HasPrefix(t, "mailto:"), strings.HasPrefix(t, "ftp://"):
		return "" // external: not fetched
	case strings.HasPrefix(t, "<") || t == "":
		return ""
	}

	path, frag := t, ""
	if i := strings.IndexByte(t, '#'); i >= 0 {
		path, frag = t[:i], t[i+1:]
	}

	target := file
	if path != "" {
		target = filepath.Join(filepath.Dir(file), filepath.FromSlash(path))
		info, err := os.Stat(target)
		if err != nil {
			return fmt.Sprintf("broken link %q: %s does not exist", t, target)
		}
		if info.IsDir() || frag == "" {
			if frag != "" {
				return fmt.Sprintf("broken link %q: anchor on a directory", t)
			}
			return ""
		}
	}
	if frag == "" {
		return ""
	}

	d, ok := docs[filepath.Clean(target)]
	if !ok {
		// Fragment into a file outside the scanned set (or a non-markdown
		// file): parse it on demand so anchors still get verified.
		if !strings.EqualFold(filepath.Ext(target), ".md") {
			return ""
		}
		var err error
		d, err = parseFile(target)
		if err != nil {
			return fmt.Sprintf("broken link %q: %v", t, err)
		}
		docs[filepath.Clean(target)] = d
	}
	if !d.anchors[strings.ToLower(frag)] {
		return fmt.Sprintf("broken anchor %q: no heading #%s in %s", t, frag, target)
	}
	return ""
}
