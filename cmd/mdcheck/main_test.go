package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDocs(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, body := range files {
		p := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestCleanDocsPass(t *testing.T) {
	dir := writeDocs(t, map[string]string{
		"README.md": "# Top\n\nSee [design](docs/DESIGN.md#deep-dive) and " +
			"[below](#local-section) and [external](https://example.com).\n\n" +
			"## Local section\n\ntext\n",
		"docs/DESIGN.md": "# Design\n\n## Deep dive\n\nback to [readme](../README.md)\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "0 broken") {
		t.Fatalf("summary = %q", stdout.String())
	}
}

func TestBrokenFileLinkFails(t *testing.T) {
	dir := writeDocs(t, map[string]string{
		"a.md": "# A\n\n[gone](missing.md)\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "missing.md") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestBrokenAnchorFails(t *testing.T) {
	dir := writeDocs(t, map[string]string{
		"a.md": "# A\n\n[bad](b.md#no-such-heading)\n",
		"b.md": "# B\n\n## Real heading\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no-such-heading") {
		t.Fatalf("stderr = %q", stderr.String())
	}
}

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Deep dive":                   "deep-dive",
		"12. Online serving: the map": "12-online-serving-the-map",
		"`code` in Heading!":          "code-in-heading",
		"Under_score and-hyphen":      "under_score-and-hyphen",
		"Sync or Async? CPU or GPU?":  "sync-or-async-cpu-or-gpu",
		"Which binary do I want?":     "which-binary-do-i-want",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDuplicateHeadingsGetSuffixes(t *testing.T) {
	dir := writeDocs(t, map[string]string{
		"a.md": "# T\n\n## Setup\n\n## Setup\n\n[first](#setup) [second](#setup-1)\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
}

func TestCodeFencesAndSpansIgnored(t *testing.T) {
	dir := writeDocs(t, map[string]string{
		"a.md": "# T\n\n```\n[not a link](nowhere.md)\n# not a heading\n```\n\n" +
			"Inline `[also not](gone.md)` code.\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
}

func TestRepoDocsAreClean(t *testing.T) {
	// The real gate: every markdown file in this repository must pass.
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("repo root not found")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{root}, &stdout, &stderr); code != 0 {
		t.Fatalf("repo docs have broken links (exit %d):\n%s", code, stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "nope")}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing path: exit %d, want 2", code)
	}
}
