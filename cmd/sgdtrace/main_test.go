package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// writeTrace records two runs (one sync, one async engine) through the real
// TraceWriter, so the test exercises the same JSONL schema the harness emits.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tw, err := obs.CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"sync/cpu-par(8)", "async/gpu"} {
		rec := tw.Run(engine, "w8a")
		for ep := 0; ep < 3; ep++ {
			rec.Phase(obs.PhaseGradient, 0.7)
			rec.Phase(obs.PhaseBarrier, 0.3)
			rec.Add(obs.CounterWorkerUpdates, 100)
			rec.EndEpoch(1.0)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummary(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "6 events read, 6 after filters, 2 runs") {
		t.Errorf("unexpected header:\n%s", out)
	}
	if !strings.Contains(out, "async/gpu") {
		t.Errorf("summary missing engine table:\n%s", out)
	}
}

func TestRunEngineFilterWordBoundary(t *testing.T) {
	path := writeTrace(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-engine", "sync", path}, strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	// "sync" must not match "async": exactly one run survives the filter.
	if !strings.Contains(stdout.String(), "3 after filters, 1 runs") {
		t.Errorf("word-boundary filter broken:\n%s", stdout.String())
	}
}

func TestRunStdinProm(t *testing.T) {
	raw, err := os.ReadFile(writeTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-prom", "-"}, bytes.NewReader(raw), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "sgd_") {
		t.Errorf("prom snapshot has no sgd_ metrics:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/trace.jsonl"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

// writeSpanFile lays down a minimal span JSONL file for the -spans mode.
func writeSpanFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	lines := `{"trace":"0000000000000001","root":"predict","dur_us":1000,"keep":"head","spans":[{"name":"queue_wait","start_us":0,"dur_us":400,"worker":-1},{"name":"score","start_us":400,"dur_us":600,"worker":-1},{"name":"score/shard","parent":"score","start_us":400,"dur_us":500,"worker":2}]}
{"trace":"0000000000000002","root":"predict","dur_us":5000,"keep":"slow","spans":[{"name":"score","start_us":0,"dur_us":5000,"worker":-1}]}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSpansMode(t *testing.T) {
	path := writeSpanFile(t)
	for _, args := range [][]string{
		{"-spans", path},
		{path}, // auto-detected by sniffing the first line
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, strings.NewReader(""), &stdout, &stderr); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", args, code, stderr.String())
		}
		out := stdout.String()
		for _, want := range []string{"2 traces", "max depth 2", "score/shard", "p99 tail attribution"} {
			if !strings.Contains(out, want) {
				t.Errorf("%v: output missing %q:\n%s", args, want, out)
			}
		}
	}
}

func TestRunSpansStdin(t *testing.T) {
	raw, err := os.ReadFile(writeSpanFile(t))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-spans", "-"}, bytes.NewReader(raw), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "2 traces") {
		t.Errorf("stdin span summary wrong:\n%s", stdout.String())
	}
}
