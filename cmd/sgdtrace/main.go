// Command sgdtrace inspects JSONL observability traces produced by the bench
// harness (bench.Options.TracePath / sgdbench -trace): it replays the events
// through the same aggregator the live harness uses and prints per-engine
// phase breakdowns, counter summaries and derived rates.
//
// Usage:
//
//	sgdtrace [-engine async] [-dataset w8a] [-prom] trace.jsonl [more.jsonl...]
//	sgdtrace -spans spans.jsonl [more.jsonl...]
//
// Pass "-" to read a trace from stdin. With -prom the aggregate is printed in
// the Prometheus text exposition format instead of the summary tables. With
// -spans the inputs are request-level span traces (internal/span JSONL, the
// sgdserve -spans export) and the summary is span counts, tree depth and the
// top spans by total time; span files are also auto-detected by sniffing the
// first line, so one inspector covers both trace formats. cmd/sgdspan is the
// deeper span analyzer (waterfalls, attribution, worst-N exemplars).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgdtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		engine  = fs.String("engine", "", "keep only events whose engine name contains this (at a word boundary, so \"sync\" does not match \"async\")")
		dataset = fs.String("dataset", "", "keep only events whose dataset name contains this (at a word boundary)")
		prom    = fs.Bool("prom", false, "print the Prometheus text snapshot instead of summary tables")
		spans   = fs.Bool("spans", false, "treat inputs as request-level span traces (auto-detected for files)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sgdtrace [flags] trace.jsonl [more.jsonl...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *spans || (fs.Arg(0) != "-" && sniffSpans(fs.Arg(0))) {
		return runSpans(fs.Args(), stdin, stdout, stderr)
	}

	agg := obs.NewAggregator()
	var total, kept int
	for _, path := range fs.Args() {
		var events []obs.Event
		var err error
		if path == "-" {
			events, err = obs.ReadTrace(stdin)
		} else {
			events, err = obs.ReadTraceFile(path)
		}
		if err != nil {
			fmt.Fprintf(stderr, "sgdtrace: %v\n", err)
			return 1
		}
		for _, ev := range events {
			total++
			if *engine != "" && !matchName(ev.Engine, *engine) {
				continue
			}
			if *dataset != "" && !matchName(ev.Dataset, *dataset) {
				continue
			}
			kept++
			agg.AddEvent(ev)
		}
	}

	if *prom {
		fmt.Fprint(stdout, agg.Snapshot())
		return 0
	}
	fmt.Fprintf(stdout, "%d events read, %d after filters, %d runs\n\n", total, kept, len(agg.Runs()))
	fmt.Fprint(stdout, agg.Summary())
	return 0
}

// sniffSpans reports whether path's first nonempty line parses as a span
// TraceRec, so `sgdtrace spans.jsonl` just works without -spans.
func sniffSpans(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		return span.Looks(line)
	}
	return false
}

// runSpans is the span-format path: read every input as span JSONL and print
// the shared summary (count, depth, top spans by total time, tail
// attribution).
func runSpans(paths []string, stdin io.Reader, stdout, stderr io.Writer) int {
	var traces []span.TraceRec
	for _, path := range paths {
		var recs []span.TraceRec
		var err error
		if path == "-" {
			recs, err = span.Read(stdin)
		} else {
			recs, err = span.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(stderr, "sgdtrace: %v\n", err)
			return 1
		}
		traces = append(traces, recs...)
	}
	span.Analyze(traces).WriteSummary(stdout, 12)
	return 0
}

// matchName reports whether name contains pat starting at a word boundary.
// Engine names nest ("sync/cpu-par(56)", "async/gpu"), so a plain substring
// match would make -engine sync select the async runs too.
func matchName(name, pat string) bool {
	for i := 0; i+len(pat) <= len(name); i++ {
		if !strings.HasPrefix(name[i:], pat) {
			continue
		}
		if i == 0 {
			return true
		}
		if c := name[i-1]; !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9') {
			return true
		}
	}
	return false
}
