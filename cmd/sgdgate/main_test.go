package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseline = "../../BENCH_baseline.json"

func TestRunBenchGateSelfComparison(t *testing.T) {
	// A report diffed against itself passes every rule: allocation pins
	// match exactly and every wall-clock ratio is 1.0.
	var stdout, stderr bytes.Buffer
	report := filepath.Join(t.TempDir(), "gate.json")
	code := run([]string{"bench", "-baseline", baseline, "-new", baseline, "-report", report}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, stderr.String(), stdout.String())
	}
	if !strings.Contains(stdout.String(), "bench gate passed") {
		t.Errorf("missing pass line:\n%s", stdout.String())
	}
	if _, err := os.Stat(report); err != nil {
		t.Errorf("gate report not written: %v", err)
	}
}

func TestRunBenchGateCatchesRegression(t *testing.T) {
	raw, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	// Break an allocation pin: the steady-state gradient path must stay
	// allocation-free, so any nonzero count fails the exact rule.
	allocs := rep["steady_state_allocs_per_op"].(map[string]any)
	allocs["lr_batchgrad"] = 3.0
	doctored, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(t.TempDir(), "fresh.json")
	if err := os.WriteFile(fresh, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"bench", "-baseline", baseline, "-new", fresh}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (gate failure); stdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stderr.String(), "bench gate FAILED") {
		t.Errorf("missing failure line:\n%s", stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"nosuchsubcommand"},
		{"bench", "-baseline", "/nonexistent.json", "-new", "/nonexistent.json"},
		{"compare", "-badflag"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit %d, want 2", args, code)
		}
	}
}
