// Command sgdgate is the regression gate for the engine matrix: it re-runs
// every configuration of the paper's sync/async × CPU/GPU × dense/sparse
// cube, plus the sharded parameter-server, Local-SGD and heterogeneous
// CPU+GPU tiers (14 configs in all), at a small seeded scale and checks the
// convergence curves against committed goldens (deterministic engines) or
// quantile envelopes (asynchronous engines), plus a noise-aware diff of the
// epochbench performance report against its committed baseline.
//
// Subcommands:
//
//	sgdgate run     [-only substr] [-report out.json]  run the matrix, write raw curves (no gating)
//	sgdgate compare [-only substr] [-golden dir] [-report out.json] [-update]
//	                                               gate against goldens; -update re-records them
//	sgdgate bench   -baseline BENCH_baseline.json -new BENCH_epoch.json [-report out.json]
//	                                               perf gate: diff fresh bench report vs baseline
//
// -only keeps the configurations whose fingerprint key contains the
// substring; a substring matching nothing is a usage error, so a typo can
// not silently gate an empty matrix. Exit status: 0 all gates pass, 1 a
// gate failed, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/regress"
)

const defaultGoldenDir = "internal/regress/testdata/golden"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "bench":
		return cmdBench(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, "usage: sgdgate {run|compare|bench} [flags]  (see go doc ./cmd/sgdgate)")
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "sgdgate:", err)
	return 2
}

// cmdRun executes the matrix and dumps every seeded curve: the inspection
// mode for deciding tolerances and debugging a failing gate.
func cmdRun(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	report := fs.String("report", "", "write raw run results as JSON to this path")
	only := fs.String("only", "", "keep configs whose fingerprint key contains this substring")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	configs, err := regress.MatrixFilter{Only: *only}.Apply(regress.FullMatrix())
	if err != nil {
		return fail(stderr, err)
	}
	type runDump struct {
		Key  string               `json:"key"`
		Cfg  regress.Config       `json:"config"`
		Runs []regress.RunOutcome `json:"runs"`
	}
	var dumps []runDump
	for _, c := range configs {
		runs, err := regress.RunSeeds(c)
		if err != nil {
			return fail(stderr, err)
		}
		key := c.Fingerprint().Key()
		dumps = append(dumps, runDump{Key: key, Cfg: c, Runs: runs})
		last := runs[len(runs)-1]
		fmt.Fprintf(stdout, "%-48s seeds=%d final_loss=%.6f sec/epoch=%.4g\n",
			key, len(runs), last.Losses[len(last.Losses)-1], last.SecPerEpoch)
	}
	if err := regress.WriteReport(*report, dumps); err != nil {
		return fail(stderr, err)
	}
	return 0
}

// cmdCompare is the convergence gate (or, with -update, the golden
// re-recorder).
func cmdCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	golden := fs.String("golden", defaultGoldenDir, "directory of committed goldens")
	report := fs.String("report", "", "write the gate report as JSON to this path")
	update := fs.Bool("update", false, "re-record goldens instead of comparing")
	only := fs.String("only", "", "keep configs whose fingerprint key contains this substring")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	configs, err := regress.MatrixFilter{Only: *only}.Apply(regress.FullMatrix())
	if err != nil {
		return fail(stderr, err)
	}
	if *update {
		if err := regress.Update(*golden, configs); err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stdout, "sgdgate: recorded %d goldens under %s\n", len(configs), *golden)
		return 0
	}
	rep := regress.Gate(*golden, configs)
	for _, r := range rep.Results {
		fmt.Fprintf(stdout, "%-6s %-48s %s\n", r.Status, r.Key, r.Detail)
	}
	if err := regress.WriteReport(*report, rep); err != nil {
		return fail(stderr, err)
	}
	if !rep.Pass {
		fmt.Fprintln(stderr, "sgdgate: convergence gate FAILED")
		return 1
	}
	fmt.Fprintln(stdout, "sgdgate: convergence gate passed")
	return 0
}

// cmdBench is the performance gate.
func cmdBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline report")
	fresh := fs.String("new", "BENCH_epoch.json", "fresh epochbench report")
	report := fs.String("report", "", "write the gate report as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rep, err := regress.CompareBenchFiles(*baseline, *fresh, nil)
	if err != nil {
		return fail(stderr, err)
	}
	for _, c := range rep.Checks {
		fmt.Fprintf(stdout, "%-6s %-45s %s\n", c.Status, c.Metric, c.Detail)
	}
	if !rep.Comparable {
		fmt.Fprintf(stdout, "sgdgate: wall-clock ratios skipped (%s)\n", rep.Skipped)
	}
	if err := regress.WriteReport(*report, rep); err != nil {
		return fail(stderr, err)
	}
	if !rep.Pass {
		fmt.Fprintln(stderr, "sgdgate: bench gate FAILED")
		return 1
	}
	fmt.Fprintln(stdout, "sgdgate: bench gate passed")
	return 0
}
