// Command sgdgate is the regression gate for the 8-engine matrix: it
// re-runs every configuration of the paper's sync/async × CPU/GPU ×
// dense/sparse cube at a small seeded scale and checks the convergence
// curves against committed goldens (deterministic engines) or quantile
// envelopes (asynchronous engines), plus a noise-aware diff of the
// epochbench performance report against its committed baseline.
//
// Subcommands:
//
//	sgdgate run     [-report out.json]             run the matrix, write raw curves (no gating)
//	sgdgate compare [-golden dir] [-report out.json] [-update]
//	                                               gate against goldens; -update re-records them
//	sgdgate bench   -baseline BENCH_baseline.json -new BENCH_epoch.json [-report out.json]
//	                                               perf gate: diff fresh bench report vs baseline
//
// Exit status: 0 all gates pass, 1 a gate failed, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/regress"
)

const defaultGoldenDir = "internal/regress/testdata/golden"

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "bench":
		cmdBench(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sgdgate {run|compare|bench} [flags]  (see go doc ./cmd/sgdgate)")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sgdgate:", err)
	os.Exit(2)
}

// cmdRun executes the matrix and dumps every seeded curve: the inspection
// mode for deciding tolerances and debugging a failing gate.
func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	report := fs.String("report", "", "write raw run results as JSON to this path")
	fs.Parse(args)
	type runDump struct {
		Key  string               `json:"key"`
		Cfg  regress.Config       `json:"config"`
		Runs []regress.RunOutcome `json:"runs"`
	}
	var dumps []runDump
	for _, c := range regress.DefaultMatrix() {
		runs, err := regress.RunSeeds(c)
		if err != nil {
			fatal(err)
		}
		key := c.Fingerprint().Key()
		dumps = append(dumps, runDump{Key: key, Cfg: c, Runs: runs})
		last := runs[len(runs)-1]
		fmt.Printf("%-48s seeds=%d final_loss=%.6f sec/epoch=%.4g\n",
			key, len(runs), last.Losses[len(last.Losses)-1], last.SecPerEpoch)
	}
	if err := regress.WriteReport(*report, dumps); err != nil {
		fatal(err)
	}
}

// cmdCompare is the convergence gate (or, with -update, the golden
// re-recorder).
func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	golden := fs.String("golden", defaultGoldenDir, "directory of committed goldens")
	report := fs.String("report", "", "write the gate report as JSON to this path")
	update := fs.Bool("update", false, "re-record goldens instead of comparing")
	fs.Parse(args)
	configs := regress.DefaultMatrix()
	if *update {
		if err := regress.Update(*golden, configs); err != nil {
			fatal(err)
		}
		fmt.Printf("sgdgate: recorded %d goldens under %s\n", len(configs), *golden)
		return
	}
	rep := regress.Gate(*golden, configs)
	for _, r := range rep.Results {
		fmt.Printf("%-6s %-48s %s\n", r.Status, r.Key, r.Detail)
	}
	if err := regress.WriteReport(*report, rep); err != nil {
		fatal(err)
	}
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "sgdgate: convergence gate FAILED")
		os.Exit(1)
	}
	fmt.Println("sgdgate: convergence gate passed")
}

// cmdBench is the performance gate.
func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	baseline := fs.String("baseline", "BENCH_baseline.json", "committed baseline report")
	fresh := fs.String("new", "BENCH_epoch.json", "fresh epochbench report")
	report := fs.String("report", "", "write the gate report as JSON to this path")
	fs.Parse(args)
	rep, err := regress.CompareBenchFiles(*baseline, *fresh, nil)
	if err != nil {
		fatal(err)
	}
	for _, c := range rep.Checks {
		fmt.Printf("%-6s %-45s %s\n", c.Status, c.Metric, c.Detail)
	}
	if !rep.Comparable {
		fmt.Printf("sgdgate: wall-clock ratios skipped (%s)\n", rep.Skipped)
	}
	if err := regress.WriteReport(*report, rep); err != nil {
		fatal(err)
	}
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "sgdgate: bench gate FAILED")
		os.Exit(1)
	}
	fmt.Println("sgdgate: bench gate passed")
}
