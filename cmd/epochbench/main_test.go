package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestRunTinyReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	procs := strconv.Itoa(runtime.GOMAXPROCS(0))
	var stdout, stderr bytes.Buffer
	code := run([]string{"-tiny", "-procs", procs, "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+out) {
		t.Errorf("missing summary line:\n%s", stdout.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !rep.Short {
		t.Error("tiny report not marked short: it must never gate against a full baseline")
	}
	if rep.Dispatch.PoolNsOp <= 0 || rep.SpMV.BalancedNsOp <= 0 || rep.BuildNsOp <= 0 {
		t.Errorf("benchmarks did not run: %+v", rep)
	}
	// The H-sweep's monotonic flag is a function of the cost model, not the
	// host, so it must hold even at smoke scale.
	if len(rep.LocalSGD.Sweep) != 4 || rep.LocalSGD.WallMonotonicDec != 1 {
		t.Errorf("local-sgd h-sweep broken: %+v", rep.LocalSGD)
	}
	for i, pt := range rep.LocalSGD.Sweep {
		if pt.SyncSecPerEpoch <= 0 || pt.AsyncSecPerEpoch <= 0 || pt.Rounds <= 0 {
			t.Errorf("sweep point %d did not run: %+v", i, pt)
		}
	}
	// The hetero split sweep runs at a fixed gate scale, so its modeled
	// numbers and both gated flags must hold even on a -tiny run.
	if len(rep.Hetero.Sweep) != 3 || rep.Hetero.AdaptiveBeatsStatic != 1 || rep.Hetero.ShiftWithin5 != 1 {
		t.Errorf("hetero split sweep broken: %+v", rep.Hetero)
	}
	for i, pt := range rep.Hetero.Sweep {
		if pt.AdaptiveSecPerEpoch <= 0 || pt.StaticSecPerEpoch <= 0 || pt.FinalGPUFrac <= 0 {
			t.Errorf("hetero sweep point %d did not run: %+v", i, pt)
		}
	}
	strongest := rep.Hetero.Sweep[len(rep.Hetero.Sweep)-1]
	if strongest.ShiftEpochs < 1 || strongest.ShiftEpochs > 5 {
		t.Errorf("strongest-skew shift epoch %d outside [1,5]", strongest.ShiftEpochs)
	}
	// The allocation pins hold at any scale: the steady-state gradient and
	// dispatch paths are allocation-free by design.
	if rep.Dispatch.PoolAllocs != 0 || rep.Allocs.LRBatchGrad != 0 {
		t.Errorf("steady-state allocations appeared: %+v %+v", rep.Dispatch, rep.Allocs)
	}
}

func TestRunBadInputs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-badflag"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	procs := strconv.Itoa(runtime.GOMAXPROCS(0))
	code := run([]string{"-tiny", "-procs", procs, "-out", "/nonexistent/dir/bench.json"}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("unwritable out: exit %d, want 1", code)
	}
	code = run([]string{"-tiny", "-procs", procs,
		"-out", filepath.Join(t.TempDir(), "b.json"), "-compare", "/nonexistent/baseline.json"}, &stdout, &stderr)
	if code != 1 {
		t.Errorf("missing baseline: exit %d, want 1", code)
	}
}
