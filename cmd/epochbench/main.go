// Command epochbench measures the host-side performance engineering of the
// epoch path and writes the results to a JSON file (BENCH_epoch.json):
//
//   - persistent worker pool vs per-call goroutine spawning on an epoch of
//     small kernels (the dispatch regime of mini-batch SGD);
//   - nnz-balanced vs even row partitioning for SpMV/SpMVT on a
//     heavy-tailed matrix — wall clock plus the critical-path nnz skew that
//     decides scaling on a many-core machine;
//   - steady-state allocation counts of the LR/SVM mini-batch gradient and
//     the pooled SpMVT;
//   - CSR assembly (Builder.Build) throughput.
//
// None of these numbers feed the paper reproduction: modeled device times
// come from the cost models and are shape-functions only. This suite tracks
// how fast the host harness itself runs.
//
// Usage: epochbench [-short] [-tiny] [-out BENCH_epoch.json] [-procs 4]
//
//	[-compare BENCH_baseline.json]
//
// -tiny shrinks both the inputs and the benchmark time to smoke-test scale;
// its numbers are meaningless for gating and exist so the command's whole
// path can run in a test.
//
// With -compare, the fresh report is additionally diffed against the given
// baseline under the regression-gate thresholds (see internal/regress) and
// the process exits non-zero on a perf regression. CI writes the fresh
// report to a temporary path and compares against the committed baseline,
// so the working tree never gets dirtied by a bench run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/regress"
	"repro/internal/sparse"
)

// report is the BENCH_epoch.json schema.
type report struct {
	Timestamp  string          `json:"timestamp"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Short      bool            `json:"short"`
	Dispatch   dispatchReport  `json:"small_kernel_epoch"`
	SpMV       partitionReport `json:"spmv"`
	SpMVT      partitionReport `json:"spmvt"`
	Allocs     allocsReport    `json:"steady_state_allocs_per_op"`
	BuildNsOp  int64           `json:"builder_build_ns_op"`
}

type dispatchReport struct {
	PoolNsOp     int64   `json:"pool_ns_op"`
	SpawnNsOp    int64   `json:"spawn_ns_op"`
	Speedup      float64 `json:"speedup"`
	PoolAllocs   int64   `json:"pool_allocs_op"`
	SpawnAllocs  int64   `json:"spawn_allocs_op"`
	KernelLen    int     `json:"kernel_len"`
	KernelsPerOp int     `json:"kernels_per_op"`
}

type partitionReport struct {
	BalancedNsOp    int64   `json:"balanced_ns_op"`
	EvenNsOp        int64   `json:"even_ns_op"`
	Parts           int     `json:"parts"`
	CriticalNNZBal  int64   `json:"critical_path_nnz_balanced"`
	CriticalNNZEven int64   `json:"critical_path_nnz_even"`
	SkewBal         float64 `json:"skew_balanced"`
	SkewEven        float64 `json:"skew_even"`
}

type allocsReport struct {
	LRBatchGrad  float64 `json:"lr_batchgrad"`
	SVMBatchGrad float64 `json:"svm_batchgrad"`
	SpMVT        float64 `json:"spmvt"`
}

// scaleTask is the pre-bound small kernel of the dispatch benchmark.
type scaleTask struct {
	data  []float64
	alpha float64
}

func (t *scaleTask) Run(lo, hi int) {
	for i := lo; i < hi; i++ {
		t.data[i] *= t.alpha
	}
}

// heavyTailCSR builds a news20-like matrix: mostly narrow rows with a 2%
// tail of very wide ones.
func heavyTailCSR(rows, cols int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		width := 1 + rng.Intn(5)
		if rng.Float64() < 0.02 {
			width = cols / 4
		}
		for k, j := 0, rng.Intn(cols); k < width && j < cols; k, j = k+1, j+1+rng.Intn(4) {
			b.Add(i, j, rng.NormFloat64())
		}
	}
	return b.Build()
}

func nsPerOp(r testing.BenchmarkResult) int64 { return r.NsPerOp() }

func benchDispatch(kernels int) dispatchReport {
	const kernelLen = 512
	p := pool.New(4)
	defer p.Close()
	buf := make([]float64, kernelLen)
	task := &scaleTask{data: buf}
	poolRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < kernels; k++ {
				task.alpha = 1.0000001
				p.RunGrain(4, kernelLen, 4096, task)
			}
		}
	})
	spawnRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < kernels; k++ {
				pool.Spawn(4, kernelLen, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						buf[j] *= 1.0000001
					}
				})
			}
		}
	})
	return dispatchReport{
		PoolNsOp:     nsPerOp(poolRes),
		SpawnNsOp:    nsPerOp(spawnRes),
		Speedup:      float64(nsPerOp(spawnRes)) / float64(nsPerOp(poolRes)),
		PoolAllocs:   poolRes.AllocsPerOp(),
		SpawnAllocs:  spawnRes.AllocsPerOp(),
		KernelLen:    kernelLen,
		KernelsPerOp: kernels,
	}
}

// evenParts is the seed's partitioning: equal row counts.
func evenParts(rows, parts int) []sparse.Range {
	chunk := (rows + parts - 1) / parts
	var out []sparse.Range
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		out = append(out, sparse.Range{Lo: lo, Hi: hi})
	}
	return out
}

// skew summarises a partition: the critical-path (max) part nnz and its
// ratio to the ideal equal share.
func skew(a *sparse.CSR, parts []sparse.Range) (critical int64, ratio float64) {
	for _, r := range parts {
		if n := r.NNZ(a); n > critical {
			critical = n
		}
	}
	ideal := float64(a.NNZ()) / float64(len(parts))
	return critical, float64(critical) / ideal
}

// benchSpMV compares the backend's nnz-balanced SpMV against an
// even-row-count parallel implementation on the same pool: the two differ
// only in where the part boundaries fall.
func benchSpMV(a *sparse.CSR, parts int) partitionReport {
	bal := linalg.NewCPU(parts)
	p := pool.Default()
	even := evenParts(a.NumRows, parts)
	x := make([]float64, a.NumCols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y := make([]float64, a.NumRows)
	balRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bal.SpMV(a, x, y)
		}
	})
	evenRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.RunFunc(len(even), len(even), func(lo, hi int) {
				for _, r := range even[lo:hi] {
					for row := r.Lo; row < r.Hi; row++ {
						y[row] = a.RowDot(row, x)
					}
				}
			})
		}
	})
	rep := partitionReport{
		BalancedNsOp: nsPerOp(balRes),
		EvenNsOp:     nsPerOp(evenRes),
		Parts:        parts,
	}
	rep.CriticalNNZBal, rep.SkewBal = skew(a, a.PartitionNNZ(parts))
	rep.CriticalNNZEven, rep.SkewEven = skew(a, even)
	return rep
}

// benchSpMVT compares the backend's SpMVT (nnz-balanced accumulation +
// column-parallel reduction) against the seed's scheme: even parts with a
// sequential Axpy reduction.
func benchSpMVT(a *sparse.CSR, parts int) partitionReport {
	bal := linalg.NewCPU(parts)
	p := pool.Default()
	even := evenParts(a.NumRows, parts)
	x := make([]float64, a.NumRows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, a.NumCols)
	partials := make([][]float64, len(even))
	for k := range partials {
		partials[k] = make([]float64, a.NumCols)
	}
	balRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bal.SpMVT(a, x, y)
		}
	})
	evenRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.RunFunc(len(even), len(even), func(lo, hi int) {
				for k := lo; k < hi; k++ {
					out := partials[k]
					for j := range out {
						out[j] = 0
					}
					for row := even[k].Lo; row < even[k].Hi; row++ {
						if x[row] != 0 {
							a.RowAxpy(row, x[row], out)
						}
					}
				}
			})
			for j := range y {
				y[j] = 0
			}
			for _, part := range partials {
				for j, v := range part {
					y[j] += v
				}
			}
		}
	})
	rep := partitionReport{
		BalancedNsOp: nsPerOp(balRes),
		EvenNsOp:     nsPerOp(evenRes),
		Parts:        parts,
	}
	rep.CriticalNNZBal, rep.SkewBal = skew(a, a.PartitionNNZ(parts))
	rep.CriticalNNZEven, rep.SkewEven = skew(a, even)
	return rep
}

func measureAllocs(n int) (allocsReport, error) {
	spec, err := data.Lookup("w8a")
	if err != nil {
		return allocsReport{}, err
	}
	ds := data.Generate(spec.Scaled(float64(n) / float64(spec.N)))
	rows := make([]int, 128)
	for i := range rows {
		rows[i] = (i * 7) % ds.N()
	}
	var rep allocsReport
	for _, m := range []model.BatchModel{model.NewLR(ds.D()), model.NewSVM(ds.D())} {
		bk := linalg.NewCPU(8)
		w := m.InitParams(1)
		g := make([]float64, m.NumParams())
		for i := 0; i < 4; i++ {
			m.BatchGrad(bk, w, ds, rows, g)
		}
		a := testing.AllocsPerRun(50, func() { m.BatchGrad(bk, w, ds, rows, g) })
		if m.Name() == "lr" {
			rep.LRBatchGrad = a
		} else {
			rep.SVMBatchGrad = a
		}
	}
	bk := linalg.NewCPU(8)
	a := ds.X
	x := make([]float64, a.NumRows)
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	y := make([]float64, a.NumCols)
	for i := 0; i < 4; i++ {
		bk.SpMVT(a, x, y)
	}
	rep.SpMVT = testing.AllocsPerRun(50, func() { bk.SpMVT(a, x, y) })
	return rep, nil
}

func benchBuild(rows, cols int) int64 {
	rng := rand.New(rand.NewSource(3))
	proto := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		width := 1 + rng.Intn(6)
		for k, j := 0, rng.Intn(cols); k < width && j < cols; k, j = k+1, j+1+rng.Intn(5) {
			proto.Add(i, j, 1)
		}
	}
	m := proto.Build()
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fb := sparse.NewBuilder(rows, cols)
			for r := 0; r < m.NumRows; r++ {
				cols, vals := m.Row(r)
				for k, c := range cols {
					fb.Add(r, int(c), vals[k])
				}
			}
			fb.Build()
		}
	})
	return nsPerOp(res)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epochbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	short := fs.Bool("short", false, "smaller matrices and fewer kernels (CI mode)")
	tiny := fs.Bool("tiny", false, "smoke-test scale: minimal inputs and 10ms benchmark time (numbers meaningless)")
	out := fs.String("out", "BENCH_epoch.json", "output JSON path")
	procs := fs.Int("procs", 4, "GOMAXPROCS for the benchmarks")
	compare := fs.String("compare", "", "baseline report to gate against (exit 1 on regression)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	runtime.GOMAXPROCS(*procs)

	rows, cols, kernels, allocN, buildRows := 50000, 4000, 256, 2000, 30000
	if *short {
		rows, cols, kernels, allocN, buildRows = 10000, 1500, 64, 800, 8000
	}
	if *tiny {
		rows, cols, kernels, allocN, buildRows = 1500, 400, 8, 300, 1000
		// testing.Benchmark sizes runs by -test.benchtime; registering the
		// testing flags (idempotent) lets us shrink it without a test binary.
		testing.Init()
		flag.Set("test.benchtime", "10ms")
	}

	rep := report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short || *tiny,
	}

	fmt.Fprintln(stderr, "epochbench: dispatch (pool vs spawn)...")
	rep.Dispatch = benchDispatch(kernels)
	a := heavyTailCSR(rows, cols, 7)
	fmt.Fprintln(stderr, "epochbench: spmv (balanced vs even partitioning)...")
	rep.SpMV = benchSpMV(a, 8)
	fmt.Fprintln(stderr, "epochbench: spmvt...")
	rep.SpMVT = benchSpMVT(a, 8)
	fmt.Fprintln(stderr, "epochbench: steady-state allocations...")
	var err error
	rep.Allocs, err = measureAllocs(allocN)
	if err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}
	fmt.Fprintln(stderr, "epochbench: builder build...")
	rep.BuildNsOp = benchBuild(buildRows, 5000)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: pool %.2fx vs spawn (%d -> %d ns/op, %d -> %d allocs), "+
		"spmv skew %.2f -> %.2f, spmvt %d vs %d ns/op, lr/svm batchgrad allocs %.0f/%.0f\n",
		*out, rep.Dispatch.Speedup, rep.Dispatch.SpawnNsOp, rep.Dispatch.PoolNsOp,
		rep.Dispatch.SpawnAllocs, rep.Dispatch.PoolAllocs,
		rep.SpMV.SkewEven, rep.SpMV.SkewBal,
		rep.SpMVT.EvenNsOp, rep.SpMVT.BalancedNsOp,
		rep.Allocs.LRBatchGrad, rep.Allocs.SVMBatchGrad)

	if *compare != "" {
		gate, err := regress.CompareBenchFiles(*compare, *out, nil)
		if err != nil {
			fmt.Fprintln(stderr, "epochbench:", err)
			return 1
		}
		for _, c := range gate.Checks {
			if c.Status != "pass" {
				fmt.Fprintf(stdout, "bench gate: %-6s %-45s %s\n", c.Status, c.Metric, c.Detail)
			}
		}
		if !gate.Pass {
			fmt.Fprintln(stderr, "epochbench: perf gate FAILED against", *compare)
			return 1
		}
		fmt.Fprintln(stdout, "epochbench: perf gate passed against", *compare)
	}
	return 0
}
