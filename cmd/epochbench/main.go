// Command epochbench measures the host-side performance engineering of the
// epoch path and writes the results to a JSON file (BENCH_epoch.json):
//
//   - persistent worker pool vs per-call goroutine spawning on an epoch of
//     small kernels (the dispatch regime of mini-batch SGD);
//   - nnz-balanced vs even row partitioning for SpMV/SpMVT on a
//     heavy-tailed matrix — wall clock plus the critical-path nnz skew that
//     decides scaling on a many-core machine;
//   - the int8 quantised scoring kernel vs its identically-shaped float64
//     twin at serving dimension, with per-row analytic error-bound checks;
//   - striped (coalescing micro-batch) vs classic Hogwild epochs under the
//     counting-CAS discipline: wall time, coalesced fraction, retry delta;
//   - steady-state allocation counts of the LR/SVM mini-batch gradient, the
//     pooled SpMVT, the quantised SpMV, and the striped sequential epoch;
//   - CSR assembly (Builder.Build) throughput;
//   - the Local-SGD H-sweep frontier: modeled and host epoch time of the
//     synchronous engine at H ∈ {1,4,16,64} with fixed K, plus the async
//     engine's (nearly H-flat) makespan for contrast;
//   - the heterogeneous split-ratio sweep: the CPU+GPU co-training engine's
//     adaptive split at fixed throughput skews (GPUStretch multiplying the
//     modeled GPU epoch time), recording how many epochs the EWMA estimator
//     needs to move the realised GPU batch fraction and whether the adapted
//     split beats a static 50/50 at the same skew.
//
// None of these numbers feed the paper reproduction: modeled device times
// come from the cost models and are shape-functions only. This suite tracks
// how fast the host harness itself runs.
//
// Usage: epochbench [-short] [-tiny] [-out BENCH_epoch.json] [-procs 4]
//
//	[-compare BENCH_baseline.json]
//
// -tiny shrinks both the inputs and the benchmark time to smoke-test scale;
// its numbers are meaningless for gating and exist so the command's whole
// path can run in a test.
//
// With -compare, the fresh report is additionally diffed against the given
// baseline under the regression-gate thresholds (see internal/regress) and
// the process exits non-zero on a perf regression. CI writes the fresh
// report to a temporary path and compares against the committed baseline,
// so the working tree never gets dirtied by a bench run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/linalg"
	"repro/internal/model"
	"repro/internal/pool"
	"repro/internal/regress"
	"repro/internal/sparse"
)

// report is the BENCH_epoch.json schema.
type report struct {
	Timestamp  string          `json:"timestamp"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Short      bool            `json:"short"`
	Dispatch   dispatchReport  `json:"small_kernel_epoch"`
	SpMV       partitionReport `json:"spmv"`
	SpMVT      partitionReport `json:"spmvt"`
	Quant      quantReport     `json:"quant_score"`
	Striped    stripedReport   `json:"striped_hogwild"`
	Allocs     allocsReport    `json:"steady_state_allocs_per_op"`
	BuildNsOp  int64           `json:"builder_build_ns_op"`
	LocalSGD   localReport     `json:"localsgd_hsweep"`
	Hetero     heteroReport    `json:"hetero_split"`
}

// localReport records the Local-SGD H-sweep frontier at fixed replica count:
// growing H removes reduction rounds from the critical path (the modeled
// epoch time falls) while the averaged model gets staler between rounds (the
// final loss drifts up) — the hardware-vs-statistical-efficiency trade the
// engine family exists to expose. The async engine's makespan is recorded at
// the same H points for contrast: its timer keeps communication off the
// critical path, so it is nearly flat in H.
type localReport struct {
	Replicas int               `json:"replicas"`
	Rows     int               `json:"rows"`
	Epochs   int               `json:"epochs"`
	Sweep    []localSweepPoint `json:"sweep"`
	// WallMonotonicDec is 1 when the sync engine's modeled sec/epoch falls
	// strictly as H grows. It lives here as a flat number, not derived from
	// the sweep array by the gate, because the bench gate's lookupNumber
	// resolves dotted paths through objects only.
	WallMonotonicDec int `json:"wall_monotonic_dec"`
}

type localSweepPoint struct {
	H int `json:"h"`
	// Rounds is the sync engine's averaging rounds per epoch:
	// ceil(perReplica/H), the quantity the modeled time is linear in.
	Rounds           int     `json:"rounds"`
	SyncSecPerEpoch  float64 `json:"sync_modeled_sec_per_epoch"`
	SyncHostNsEpoch  int64   `json:"sync_host_ns_epoch"`
	SyncFinalLoss    float64 `json:"sync_final_loss"`
	AsyncSecPerEpoch float64 `json:"async_modeled_sec_per_epoch"`
	AsyncFinalLoss   float64 `json:"async_final_loss"`
}

// heteroReport records the heterogeneous engine's split-ratio convergence at
// fixed throughput skews. Every number is a modeled quantity — an exact
// function of the cost model and the seed, with no host noise — so the two
// flags are machine-independent and gated exactly at every size class.
type heteroReport struct {
	CPUWorkers int                `json:"cpu_workers"`
	Rows       int                `json:"rows"`
	Epochs     int                `json:"epochs"`
	Sweep      []heteroSweepPoint `json:"sweep"`
	// AdaptiveBeatsStatic is 1 when, at the strongest skew in the sweep, the
	// adapted split's final modeled epoch time beats the static 50/50 split
	// under the same skew. ShiftWithin5 is 1 when the same point moved the
	// realised GPU batch fraction by >= 0.20 within 5 epochs — the
	// rebalancing bound DESIGN.md §17 promises. Both live here as flat
	// numbers, not derived from the sweep array by the gate, because the
	// bench gate's lookupNumber resolves dotted paths through objects only.
	AdaptiveBeatsStatic int `json:"adaptive_beats_static"`
	ShiftWithin5        int `json:"shift_within_5"`
}

type heteroSweepPoint struct {
	// GPUStretch multiplies the modeled GPU epoch time (1 = healthy,
	// >1 = a chaos-free stand-in for a straggling device).
	GPUStretch float64 `json:"gpu_stretch"`
	// StartGPUFrac/FinalGPUFrac are the realised GPU batch fractions of the
	// first and last epoch; ShiftEpochs is the first epoch (1-based) whose
	// fraction moved >= 0.20 from the start, -1 if it never did.
	StartGPUFrac float64 `json:"start_gpu_frac"`
	FinalGPUFrac float64 `json:"final_gpu_frac"`
	ShiftEpochs  int     `json:"shift_epochs"`
	// AdaptiveSecPerEpoch is the adapted split's final-epoch modeled time;
	// StaticSecPerEpoch the static 50/50 engine's mean over the same epochs.
	AdaptiveSecPerEpoch float64 `json:"adaptive_modeled_sec_per_epoch"`
	StaticSecPerEpoch   float64 `json:"static_modeled_sec_per_epoch"`
	FinalLoss           float64 `json:"final_loss"`
}

type dispatchReport struct {
	PoolNsOp     int64   `json:"pool_ns_op"`
	SpawnNsOp    int64   `json:"spawn_ns_op"`
	Speedup      float64 `json:"speedup"`
	PoolAllocs   int64   `json:"pool_allocs_op"`
	SpawnAllocs  int64   `json:"spawn_allocs_op"`
	KernelLen    int     `json:"kernel_len"`
	KernelsPerOp int     `json:"kernels_per_op"`
}

type partitionReport struct {
	BalancedNsOp    int64   `json:"balanced_ns_op"`
	EvenNsOp        int64   `json:"even_ns_op"`
	Parts           int     `json:"parts"`
	CriticalNNZBal  int64   `json:"critical_path_nnz_balanced"`
	CriticalNNZEven int64   `json:"critical_path_nnz_even"`
	SkewBal         float64 `json:"skew_balanced"`
	SkewEven        float64 `json:"skew_even"`
}

type allocsReport struct {
	LRBatchGrad  float64 `json:"lr_batchgrad"`
	SVMBatchGrad float64 `json:"svm_batchgrad"`
	SpMVT        float64 `json:"spmvt"`
	QuantSpMV    float64 `json:"quant_spmv"`
	StripedEpoch float64 `json:"striped_epoch"`
}

// quantReport compares the int8 quantised scoring kernel against the
// identically-structured float64 kernel at equal batch size and dispatch
// (linalg.Int8Kernel). The dimension is chosen so the float64 weight vector
// spills the L2 cache while its int8 twin stays resident — the serving-size
// regime where quantisation pays.
type quantReport struct {
	Dim             int     `json:"dim"`
	BatchRows       int     `json:"batch_rows"`
	RowNNZ          int     `json:"row_nnz"`
	Workers         int     `json:"workers"`
	FloatNsOp       int64   `json:"float_ns_op"`
	QuantNsOp       int64   `json:"quant_ns_op"`
	Speedup         float64 `json:"speedup"`
	MaxAbsDelta     float64 `json:"max_abs_delta"`
	BoundViolations int     `json:"bound_violations"`
}

// stripedReport compares striped (per-worker coalescing micro-batch)
// Hogwild against the classic per-update path, both under the counting
// atomic discipline on the same data and seeds. The coalesced fraction and
// issued-adds ratio are functions of the dataset and window only — machine-
// independent — while CAS retries depend on real core-level concurrency, so
// the retry ratio is reported as 0 (informational) when the unstriped run
// saw fewer than casRetryFloor retries (single-core hosts).
type stripedReport struct {
	Rows                int     `json:"rows"`
	Threads             int     `json:"threads"`
	Window              int     `json:"window"`
	Epochs              int     `json:"epochs"`
	UnstripedNsOp       int64   `json:"unstriped_ns_op"`
	StripedNsOp         int64   `json:"striped_ns_op"`
	NsOpRatio           float64 `json:"ns_op_ratio"`
	AddsUnstriped       int64   `json:"atomic_adds_unstriped"`
	AddsStriped         int64   `json:"atomic_adds_striped"`
	CoalescedFrac       float64 `json:"coalesced_frac"`
	Flushes             int64   `json:"flushes"`
	CASRetriesUnstriped int64   `json:"cas_retries_unstriped"`
	CASRetriesStriped   int64   `json:"cas_retries_striped"`
	RetryRatio          float64 `json:"retry_ratio"`
}

// scaleTask is the pre-bound small kernel of the dispatch benchmark.
type scaleTask struct {
	data  []float64
	alpha float64
}

func (t *scaleTask) Run(lo, hi int) {
	for i := lo; i < hi; i++ {
		t.data[i] *= t.alpha
	}
}

// heavyTailCSR builds a news20-like matrix: mostly narrow rows with a 2%
// tail of very wide ones.
func heavyTailCSR(rows, cols int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		width := 1 + rng.Intn(5)
		if rng.Float64() < 0.02 {
			width = cols / 4
		}
		for k, j := 0, rng.Intn(cols); k < width && j < cols; k, j = k+1, j+1+rng.Intn(4) {
			b.Add(i, j, rng.NormFloat64())
		}
	}
	return b.Build()
}

func nsPerOp(r testing.BenchmarkResult) int64 { return r.NsPerOp() }

func benchDispatch(kernels int) dispatchReport {
	const kernelLen = 512
	p := pool.New(4)
	defer p.Close()
	buf := make([]float64, kernelLen)
	task := &scaleTask{data: buf}
	poolRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < kernels; k++ {
				task.alpha = 1.0000001
				p.RunGrain(4, kernelLen, 4096, task)
			}
		}
	})
	spawnRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < kernels; k++ {
				pool.Spawn(4, kernelLen, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						buf[j] *= 1.0000001
					}
				})
			}
		}
	})
	return dispatchReport{
		PoolNsOp:     nsPerOp(poolRes),
		SpawnNsOp:    nsPerOp(spawnRes),
		Speedup:      float64(nsPerOp(spawnRes)) / float64(nsPerOp(poolRes)),
		PoolAllocs:   poolRes.AllocsPerOp(),
		SpawnAllocs:  spawnRes.AllocsPerOp(),
		KernelLen:    kernelLen,
		KernelsPerOp: kernels,
	}
}

// evenParts is the seed's partitioning: equal row counts.
func evenParts(rows, parts int) []sparse.Range {
	chunk := (rows + parts - 1) / parts
	var out []sparse.Range
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		out = append(out, sparse.Range{Lo: lo, Hi: hi})
	}
	return out
}

// skew summarises a partition: the critical-path (max) part nnz and its
// ratio to the ideal equal share.
func skew(a *sparse.CSR, parts []sparse.Range) (critical int64, ratio float64) {
	for _, r := range parts {
		if n := r.NNZ(a); n > critical {
			critical = n
		}
	}
	ideal := float64(a.NNZ()) / float64(len(parts))
	return critical, float64(critical) / ideal
}

// benchSpMV compares the backend's nnz-balanced SpMV against an
// even-row-count parallel implementation on the same pool: the two differ
// only in where the part boundaries fall.
func benchSpMV(a *sparse.CSR, parts int) partitionReport {
	bal := linalg.NewCPU(parts)
	p := pool.Default()
	even := evenParts(a.NumRows, parts)
	x := make([]float64, a.NumCols)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y := make([]float64, a.NumRows)
	balRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bal.SpMV(a, x, y)
		}
	})
	evenRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.RunFunc(len(even), len(even), func(lo, hi int) {
				for _, r := range even[lo:hi] {
					for row := r.Lo; row < r.Hi; row++ {
						y[row] = a.RowDot(row, x)
					}
				}
			})
		}
	})
	rep := partitionReport{
		BalancedNsOp: nsPerOp(balRes),
		EvenNsOp:     nsPerOp(evenRes),
		Parts:        parts,
	}
	rep.CriticalNNZBal, rep.SkewBal = skew(a, a.PartitionNNZ(parts))
	rep.CriticalNNZEven, rep.SkewEven = skew(a, even)
	return rep
}

// benchSpMVT compares the backend's SpMVT (nnz-balanced accumulation +
// column-parallel reduction) against the seed's scheme: even parts with a
// sequential Axpy reduction.
func benchSpMVT(a *sparse.CSR, parts int) partitionReport {
	bal := linalg.NewCPU(parts)
	p := pool.Default()
	even := evenParts(a.NumRows, parts)
	x := make([]float64, a.NumRows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, a.NumCols)
	partials := make([][]float64, len(even))
	for k := range partials {
		partials[k] = make([]float64, a.NumCols)
	}
	balRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bal.SpMVT(a, x, y)
		}
	})
	evenRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.RunFunc(len(even), len(even), func(lo, hi int) {
				for k := lo; k < hi; k++ {
					out := partials[k]
					for j := range out {
						out[j] = 0
					}
					for row := even[k].Lo; row < even[k].Hi; row++ {
						if x[row] != 0 {
							a.RowAxpy(row, x[row], out)
						}
					}
				}
			})
			for j := range y {
				y[j] = 0
			}
			for _, part := range partials {
				for j, v := range part {
					y[j] += v
				}
			}
		}
	})
	rep := partitionReport{
		BalancedNsOp: nsPerOp(balRes),
		EvenNsOp:     nsPerOp(evenRes),
		Parts:        parts,
	}
	rep.CriticalNNZBal, rep.SkewBal = skew(a, a.PartitionNNZ(parts))
	rep.CriticalNNZEven, rep.SkewEven = skew(a, even)
	return rep
}

// serveBatchCSR builds a scoring batch: rows examples of nnz features each,
// the columns spread uniformly over the full dimension so every row streams
// the whole weight vector's address range — the access pattern that makes
// the float64 vector's cache footprint the bottleneck.
func serveBatchCSR(rows, dim, nnz, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewBuilder(int(rows), int(dim))
	stride := int(dim) / int(nnz)
	for i := 0; i < int(rows); i++ {
		for k := 0; k < int(nnz); k++ {
			b.Add(i, k*stride+rng.Intn(stride), rng.NormFloat64())
		}
	}
	return b.Build()
}

// minNsOp is testing.Benchmark repeated `runs` times keeping the best
// ns/op. Wall-clock minima are the standard defense against a noisy
// (shared, single-core) host: interference only ever slows a run down, so
// the minimum is the closest observable to the kernel's true cost.
func minNsOp(runs int, f func()) int64 {
	best := int64(1<<63 - 1)
	for r := 0; r < runs; r++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f()
			}
		})
		if v := res.NsPerOp(); v < best {
			best = v
		}
	}
	return best
}

// benchQuant measures the int8 quantised SpMV against its float64 twin
// (identical dispatch and unrolling, linalg.Int8Kernel) on a serving-size
// batch, verifies every quantised score against the analytic error bound
// (untimed), and proves the steady-state quantised path allocation-free.
//
// The timed kernels run serially (workers=1) with best-of-3 ns/op: the
// quantisation win is a memory-footprint property of the kernel itself
// (int8 weights L2-resident where the float64 vector spills), and pool
// dispatch on an unknown host adds scheduling noise without changing that
// ratio — both paths fan out identically in production.
func benchQuant(dim, rows, nnz, workers int) (quantReport, float64) {
	a := serveBatchCSR(int64(rows), int64(dim), int64(nnz), 11)
	rng := rand.New(rand.NewSource(12))
	w := make([]float64, dim)
	for i := range w {
		w[i] = rng.NormFloat64() * 0.1
	}
	qw := model.Quantize(w)
	k := linalg.NewInt8Kernel(workers)
	yf := make([]float64, rows)
	yq := make([]float64, rows)

	// Untimed accuracy check: every row's |quant − float| must sit inside
	// its analytic bound (the same slack internal/regress applies — the two
	// kernels reassociate identically here, but keep the gates consistent).
	k.SpMVFloat(a, w, yf)
	k.SpMV(a, qw, yq)
	rep := quantReport{Dim: dim, BatchRows: rows, RowNNZ: nnz, Workers: workers}
	for i := 0; i < rows; i++ {
		d := yq[i] - yf[i]
		if d < 0 {
			d = -d
		}
		if d > rep.MaxAbsDelta {
			rep.MaxAbsDelta = d
		}
		if bound := qw.RowErrorBound(a, i); d > bound*(1+1e-9)+1e-12 {
			rep.BoundViolations++
		}
	}

	rep.FloatNsOp = minNsOp(3, func() { k.SpMVFloat(a, w, yf) })
	rep.QuantNsOp = minNsOp(3, func() { k.SpMV(a, qw, yq) })
	rep.Speedup = float64(rep.FloatNsOp) / float64(rep.QuantNsOp)
	allocs := testing.AllocsPerRun(20, func() { k.SpMV(a, qw, yq) })
	return rep, allocs
}

// benchStriped compares striped against classic Hogwild on the same scaled
// w8a sample: both engines run the counting-CAS discipline with 4 workers
// and identical shuffle seeds, so the only difference is the per-worker
// coalescing micro-batch. Wall time is measured manually over fixed epochs
// (not testing.Benchmark) so the stripe and CAS-retry counters correspond
// exactly to the timed work.
func benchStriped(n, epochs int) (stripedReport, float64, error) {
	spec, err := data.Lookup("w8a")
	if err != nil {
		return stripedReport{}, 0, err
	}
	ds := data.Generate(spec.Scaled(float64(n) / float64(spec.N)))
	const threads, window = 4, 256
	// Epochs reports the total timed epochs (3 best-of rounds of `epochs`);
	// the add/retry/flush counters below cover exactly that span.
	rep := stripedReport{Rows: ds.N(), Threads: threads, Window: window, Epochs: 3 * epochs}

	runOne := func(stripe bool) (nsOp int64, retries, flushes, coalesced, applied int64) {
		m := model.NewLR(ds.D())
		upd := &model.CountingAtomicUpdater{}
		eng := core.NewHogwild(m, ds, 0.05, threads)
		eng.Updater = upd
		if stripe {
			eng.StripeWindow = window
		}
		eng.SetShuffleSeed(42)
		w := m.InitParams(1)
		eng.RunEpoch(w) // warm-up: builds buffers, scratches, partitions
		warmRetries := upd.Retries()
		_, warmCoalesced, warmApplied := eng.StripeCounters()
		// Best-of-3 rounds of `epochs` epochs against host noise; the
		// counters are deterministic functions of the data and accumulate
		// over every round.
		best := int64(1<<63 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			for e := 0; e < epochs; e++ {
				eng.RunEpoch(w)
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
		}
		nsOp = best / int64(epochs*ds.N())
		retries = upd.Retries() - warmRetries
		flushes, coalesced, applied = eng.StripeCounters()
		coalesced -= warmCoalesced
		applied -= warmApplied
		return
	}

	unNs, unRetries, _, _, _ := runOne(false)
	stNs, stRetries, flushes, coalesced, applied := runOne(true)
	rep.UnstripedNsOp, rep.StripedNsOp = unNs, stNs
	rep.NsOpRatio = float64(stNs) / float64(unNs)
	// The striped run issued `applied` base-updater adds and merged away
	// `coalesced`; the unstriped run, over the same shuffles, issues every
	// one of them.
	rep.AddsUnstriped = applied + coalesced
	rep.AddsStriped = applied
	if total := applied + coalesced; total > 0 {
		rep.CoalescedFrac = float64(coalesced) / float64(total)
	}
	rep.Flushes = flushes
	rep.CASRetriesUnstriped = unRetries
	rep.CASRetriesStriped = stRetries
	// CAS retries need real core-level concurrency to mean anything: on a
	// host where the unstriped run barely contends, the ratio is noise, so
	// it is reported as 0 (informational) below the floor.
	const casRetryFloor = 50
	if unRetries >= casRetryFloor {
		rep.RetryRatio = float64(stRetries) / float64(unRetries)
	}

	// Alloc proof on the sequential striped path (Threads=1): AllocsPerRun
	// pins GOMAXPROCS to 1, which would push a 4-thread engine onto the
	// emulated path and measure the wrong thing. The sequential engine runs
	// the same StripeBuffer Add/Flush hot loop; the concurrent dispatch
	// around it is already pinned alloc-free by the pool benchmarks.
	m := model.NewLR(ds.D())
	eng := core.NewHogwild(m, ds, 0.05, 1)
	eng.Updater = &model.CountingAtomicUpdater{}
	eng.StripeWindow = window
	w := m.InitParams(1)
	eng.RunEpoch(w)
	allocs := testing.AllocsPerRun(3, func() { eng.RunEpoch(w) })
	return rep, allocs, nil
}

// benchLocal sweeps the Local-SGD engines over H at fixed K on a scaled w8a
// sample. The modeled times are exact functions of the cost model (no host
// noise), so the monotonicity flag is machine-independent; the host ns/epoch
// of the sync engine is best-of-3 wall clock over the same epochs, recorded
// for the harness-overhead trend only.
func benchLocal(n, epochs int) (localReport, error) {
	spec, err := data.Lookup("w8a")
	if err != nil {
		return localReport{}, err
	}
	ds := data.Generate(spec.Scaled(float64(n) / float64(spec.N)))
	const replicas = 8
	rep := localReport{Replicas: replicas, Rows: ds.N(), Epochs: epochs, WallMonotonicDec: 1}
	perReplica := (ds.N() + replicas - 1) / replicas
	prev := -1.0
	for _, h := range []int{1, 4, 16, 64} {
		pt := localSweepPoint{H: h, Rounds: (perReplica + h - 1) / h}

		m := model.NewLR(ds.D())
		sync := core.NewLocalSGD(m, ds, 0.5, replicas, h)
		sync.SetShuffleSeed(42)
		w := m.InitParams(1)
		sync.RunEpoch(w) // warm-up: builds replicas, scratches, partitions
		best := int64(1<<63 - 1)
		for round := 0; round < 3; round++ {
			start := time.Now()
			var modeled float64
			for e := 0; e < epochs; e++ {
				modeled += sync.RunEpoch(w)
			}
			pt.SyncSecPerEpoch = modeled / float64(epochs)
			if ns := time.Since(start).Nanoseconds() / int64(epochs); ns < best {
				best = ns
			}
		}
		pt.SyncHostNsEpoch = best
		pt.SyncFinalLoss = model.MeanLoss(m, w, ds)

		m = model.NewLR(ds.D())
		async := core.NewAsyncLocalSGD(m, ds, 0.5, replicas, h)
		async.SetShuffleSeed(42)
		w = m.InitParams(1)
		var modeled float64
		for e := 0; e < epochs; e++ {
			modeled += async.RunEpoch(w)
		}
		pt.AsyncSecPerEpoch = modeled / float64(epochs)
		pt.AsyncFinalLoss = model.MeanLoss(m, w, ds)

		rep.Sweep = append(rep.Sweep, pt)
		if prev > 0 && pt.SyncSecPerEpoch >= prev {
			rep.WallMonotonicDec = 0
		}
		prev = pt.SyncSecPerEpoch
	}
	return rep, nil
}

// benchHetero sweeps the heterogeneous engine's adaptive split over GPU
// throughput skews on a scaled w8a sample. GPUStretch is the engine's
// chaos-free skew knob: at 1 the GPU is the faster backend and the estimator
// drifts GPU-heavy; at the strongest skew the stretched device floors on its
// kernel-launch cost and the estimator must shed batches to the CPU pool.
// The flags gate the strongest-skew point only — the intermediate point maps
// the frontier but sits near the crossover where neither backend dominates.
func benchHetero(n, epochs int) (heteroReport, error) {
	spec, err := data.Lookup("w8a")
	if err != nil {
		return heteroReport{}, err
	}
	ds := data.Generate(spec.Scaled(float64(n) / float64(spec.N)))
	const cpuWorkers = 8
	rep := heteroReport{
		CPUWorkers:          cpuWorkers,
		Rows:                ds.N(),
		Epochs:              epochs,
		AdaptiveBeatsStatic: 1,
		ShiftWithin5:        1,
	}
	stretches := []float64{1, 4, 10}
	for _, stretch := range stretches {
		pt := heteroSweepPoint{GPUStretch: stretch, ShiftEpochs: -1}

		m := model.NewLR(ds.D())
		ad := core.NewHetero(m, ds, 0.5, cpuWorkers)
		ad.GPUStretch = stretch
		ad.SetShuffleSeed(42)
		w := m.InitParams(1)
		var lastSec float64
		for e := 0; e < epochs; e++ {
			lastSec = ad.RunEpoch(w)
			cb, gb := ad.LastSplit()
			frac := float64(gb) / float64(cb+gb)
			if e == 0 {
				pt.StartGPUFrac = frac
			} else if pt.ShiftEpochs < 0 && math.Abs(frac-pt.StartGPUFrac) >= 0.20 {
				pt.ShiftEpochs = e + 1
			}
			pt.FinalGPUFrac = frac
		}
		pt.AdaptiveSecPerEpoch = lastSec
		pt.FinalLoss = model.MeanLoss(m, w, ds)

		m = model.NewLR(ds.D())
		st := core.NewHetero(m, ds, 0.5, cpuWorkers)
		st.GPUStretch = stretch
		st.FixedGPUShare = 0.5
		st.SetShuffleSeed(42)
		w = m.InitParams(1)
		var modeled float64
		for e := 0; e < epochs; e++ {
			modeled += st.RunEpoch(w)
		}
		pt.StaticSecPerEpoch = modeled / float64(epochs)

		rep.Sweep = append(rep.Sweep, pt)
		if stretch == stretches[len(stretches)-1] {
			if pt.ShiftEpochs < 0 || pt.ShiftEpochs > 5 {
				rep.ShiftWithin5 = 0
			}
			if pt.AdaptiveSecPerEpoch >= pt.StaticSecPerEpoch {
				rep.AdaptiveBeatsStatic = 0
			}
		}
	}
	return rep, nil
}

func measureAllocs(n int) (allocsReport, error) {
	spec, err := data.Lookup("w8a")
	if err != nil {
		return allocsReport{}, err
	}
	ds := data.Generate(spec.Scaled(float64(n) / float64(spec.N)))
	rows := make([]int, 128)
	for i := range rows {
		rows[i] = (i * 7) % ds.N()
	}
	var rep allocsReport
	for _, m := range []model.BatchModel{model.NewLR(ds.D()), model.NewSVM(ds.D())} {
		bk := linalg.NewCPU(8)
		w := m.InitParams(1)
		g := make([]float64, m.NumParams())
		for i := 0; i < 4; i++ {
			m.BatchGrad(bk, w, ds, rows, g)
		}
		a := testing.AllocsPerRun(50, func() { m.BatchGrad(bk, w, ds, rows, g) })
		if m.Name() == "lr" {
			rep.LRBatchGrad = a
		} else {
			rep.SVMBatchGrad = a
		}
	}
	bk := linalg.NewCPU(8)
	a := ds.X
	x := make([]float64, a.NumRows)
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	y := make([]float64, a.NumCols)
	for i := 0; i < 4; i++ {
		bk.SpMVT(a, x, y)
	}
	rep.SpMVT = testing.AllocsPerRun(50, func() { bk.SpMVT(a, x, y) })
	return rep, nil
}

func benchBuild(rows, cols int) int64 {
	rng := rand.New(rand.NewSource(3))
	proto := sparse.NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		width := 1 + rng.Intn(6)
		for k, j := 0, rng.Intn(cols); k < width && j < cols; k, j = k+1, j+1+rng.Intn(5) {
			proto.Add(i, j, 1)
		}
	}
	m := proto.Build()
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fb := sparse.NewBuilder(rows, cols)
			for r := 0; r < m.NumRows; r++ {
				cols, vals := m.Row(r)
				for k, c := range cols {
					fb.Add(r, int(c), vals[k])
				}
			}
			fb.Build()
		}
	})
	return nsPerOp(res)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("epochbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	short := fs.Bool("short", false, "smaller matrices and fewer kernels (CI mode)")
	tiny := fs.Bool("tiny", false, "smoke-test scale: minimal inputs and 10ms benchmark time (numbers meaningless)")
	out := fs.String("out", "BENCH_epoch.json", "output JSON path")
	procs := fs.Int("procs", 4, "GOMAXPROCS for the benchmarks")
	compare := fs.String("compare", "", "baseline report to gate against (exit 1 on regression)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	runtime.GOMAXPROCS(*procs)

	rows, cols, kernels, allocN, buildRows := 50000, 4000, 256, 2000, 30000
	// The quantised-scoring dim makes the float64 weight vector (8B/comp)
	// spill a ~2MB L2 while the int8 one stays resident — the regime the
	// serving tier targets. Striped-Hogwild epochs trade count for stable
	// wall-clock means.
	quantDim, quantRows, quantNNZ := 1<<19, 2048, 256
	stripeN, stripeEpochs := 20000, 20
	localN, localEpochs := 20000, 8
	// The hetero sweep does not scale with the size class: its numbers are
	// pure cost-model shapes, and the stretch needed to overpower the GPU
	// grows with n as the kernel-launch cost amortises — so the flags are only
	// scale-independent at a fixed n. It runs at the regress gate scale
	// (n=400, the HeteroMatrix configs) everywhere; it is cheap enough that
	// even -tiny keeps it, shrinking only the epoch count.
	heteroN, heteroEpochs := 400, 8
	if *short {
		rows, cols, kernels, allocN, buildRows = 10000, 1500, 64, 800, 8000
		quantRows, stripeN, stripeEpochs = 1024, 8000, 8
		localN, localEpochs = 8000, 4
	}
	if *tiny {
		rows, cols, kernels, allocN, buildRows = 1500, 400, 8, 300, 1000
		quantDim, quantRows, quantNNZ = 1<<14, 256, 16
		stripeN, stripeEpochs = 1000, 2
		// 1000 rows over 8 replicas is 125 local steps each: the round
		// counts at H ∈ {1,4,16,64} are 125/32/8/2, still strictly
		// decreasing, so the monotonicity flag holds even at smoke scale.
		localN, localEpochs = 1000, 2
		// The hetero flags need a couple of adaptation epochs past the shift
		// window, so the epoch count shrinks less than the rest.
		heteroEpochs = 6
		// testing.Benchmark sizes runs by -test.benchtime; registering the
		// testing flags (idempotent) lets us shrink it without a test binary.
		testing.Init()
		flag.Set("test.benchtime", "10ms")
	}

	rep := report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Short:      *short || *tiny,
	}

	fmt.Fprintln(stderr, "epochbench: dispatch (pool vs spawn)...")
	rep.Dispatch = benchDispatch(kernels)
	a := heavyTailCSR(rows, cols, 7)
	fmt.Fprintln(stderr, "epochbench: spmv (balanced vs even partitioning)...")
	rep.SpMV = benchSpMV(a, 8)
	fmt.Fprintln(stderr, "epochbench: spmvt...")
	rep.SpMVT = benchSpMVT(a, 8)
	fmt.Fprintln(stderr, "epochbench: quantised scoring (int8 vs float64)...")
	rep.Quant, rep.Allocs.QuantSpMV = benchQuant(quantDim, quantRows, quantNNZ, 1)
	fmt.Fprintln(stderr, "epochbench: striped hogwild (window coalescing)...")
	var err error
	rep.Striped, rep.Allocs.StripedEpoch, err = benchStriped(stripeN, stripeEpochs)
	if err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}
	fmt.Fprintln(stderr, "epochbench: steady-state allocations...")
	var allocs allocsReport
	allocs, err = measureAllocs(allocN)
	if err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}
	allocs.QuantSpMV, allocs.StripedEpoch = rep.Allocs.QuantSpMV, rep.Allocs.StripedEpoch
	rep.Allocs = allocs
	fmt.Fprintln(stderr, "epochbench: builder build...")
	rep.BuildNsOp = benchBuild(buildRows, 5000)
	fmt.Fprintln(stderr, "epochbench: local-sgd h-sweep...")
	rep.LocalSGD, err = benchLocal(localN, localEpochs)
	if err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}
	fmt.Fprintln(stderr, "epochbench: hetero split-ratio sweep...")
	rep.Hetero, err = benchHetero(heteroN, heteroEpochs)
	if err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(stderr, "epochbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s: pool %.2fx vs spawn (%d -> %d ns/op, %d -> %d allocs), "+
		"spmv skew %.2f -> %.2f, spmvt %d vs %d ns/op, lr/svm batchgrad allocs %.0f/%.0f\n",
		*out, rep.Dispatch.Speedup, rep.Dispatch.SpawnNsOp, rep.Dispatch.PoolNsOp,
		rep.Dispatch.SpawnAllocs, rep.Dispatch.PoolAllocs,
		rep.SpMV.SkewEven, rep.SpMV.SkewBal,
		rep.SpMVT.EvenNsOp, rep.SpMVT.BalancedNsOp,
		rep.Allocs.LRBatchGrad, rep.Allocs.SVMBatchGrad)
	fmt.Fprintf(stdout, "quant int8 %.2fx vs float (%d -> %d ns/op, max delta %.3g, %d bound violations, %.0f allocs); "+
		"striped hogwild ratio %.2f (%d -> %d ns/update, coalesced %.1f%%, retries %d -> %d, %.0f allocs)\n",
		rep.Quant.Speedup, rep.Quant.FloatNsOp, rep.Quant.QuantNsOp,
		rep.Quant.MaxAbsDelta, rep.Quant.BoundViolations, rep.Allocs.QuantSpMV,
		rep.Striped.NsOpRatio, rep.Striped.UnstripedNsOp, rep.Striped.StripedNsOp,
		100*rep.Striped.CoalescedFrac, rep.Striped.CASRetriesUnstriped, rep.Striped.CASRetriesStriped,
		rep.Allocs.StripedEpoch)
	fmt.Fprintf(stdout, "local-sgd h-sweep (K=%d):", rep.LocalSGD.Replicas)
	for _, pt := range rep.LocalSGD.Sweep {
		fmt.Fprintf(stdout, " H=%d sync %.3g s/epoch (async %.3g)", pt.H, pt.SyncSecPerEpoch, pt.AsyncSecPerEpoch)
	}
	fmt.Fprintf(stdout, "; monotonic dec: %d\n", rep.LocalSGD.WallMonotonicDec)
	fmt.Fprintf(stdout, "hetero split (K=%d):", rep.Hetero.CPUWorkers)
	for _, pt := range rep.Hetero.Sweep {
		fmt.Fprintf(stdout, " stretch=%g gpu %.2f->%.2f (shift@%d, adaptive %.3g vs static %.3g s/epoch)",
			pt.GPUStretch, pt.StartGPUFrac, pt.FinalGPUFrac, pt.ShiftEpochs,
			pt.AdaptiveSecPerEpoch, pt.StaticSecPerEpoch)
	}
	fmt.Fprintf(stdout, "; adaptive beats static: %d, shift within 5: %d\n",
		rep.Hetero.AdaptiveBeatsStatic, rep.Hetero.ShiftWithin5)

	if *compare != "" {
		gate, err := regress.CompareBenchFiles(*compare, *out, nil)
		if err != nil {
			fmt.Fprintln(stderr, "epochbench:", err)
			return 1
		}
		for _, c := range gate.Checks {
			if c.Status != "pass" {
				fmt.Fprintf(stdout, "bench gate: %-6s %-45s %s\n", c.Status, c.Metric, c.Detail)
			}
		}
		if !gate.Pass {
			fmt.Fprintln(stderr, "epochbench: perf gate FAILED against", *compare)
			return 1
		}
		fmt.Fprintln(stdout, "epochbench: perf gate passed against", *compare)
	}
	return 0
}
