package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/span"
)

// writeSpans lays down a controlled trace set in the span JSONL schema: 9
// fast fully-attributed requests plus one slow chaos-faulted one whose spans
// cover only 80% of its wall time, so the attribution gate has something to
// fail on.
func writeSpans(t *testing.T) string {
	t.Helper()
	var traces []span.TraceRec
	for i := 0; i < 9; i++ {
		traces = append(traces, span.TraceRec{
			Trace: fmt.Sprintf("%016x", i+1), Root: "predict", DurUS: 1000, Keep: span.KeepHead,
			Spans: []span.SpanRec{
				{Name: "queue_wait", StartUS: 0, DurUS: 400, Worker: -1},
				{Name: "score", StartUS: 400, DurUS: 600, Worker: -1},
				{Name: "score/shard", Parent: "score", StartUS: 400, DurUS: 500, Worker: i % 4},
			},
		})
	}
	traces = append(traces, span.TraceRec{
		Trace: "00000000000000ff", Root: "predict", DurUS: 50000,
		Keep: span.KeepFault, Fault: "straggler",
		Spans: []span.SpanRec{
			{Name: "score", StartUS: 0, DurUS: 3000, Worker: -1},
			{Name: "chaos_stall", StartUS: 3000, DurUS: 37000, Worker: -1, Fault: "straggler"},
		},
	})
	var buf bytes.Buffer
	for _, tr := range traces {
		line, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSummaryAndWaterfall(t *testing.T) {
	path := writeSpans(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-worst", "2", path}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"10 traces",
		"score/shard",
		"p99 tail attribution",
		"worst 2 traces:",
		"fault=straggler",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONAndAttributionGate(t *testing.T) {
	path := writeSpans(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", path}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var a span.Analysis
	if err := json.Unmarshal(stdout.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if a.Traces != 10 || a.MaxDepth != 2 {
		t.Fatalf("analysis = %d traces, depth %d", a.Traces, a.MaxDepth)
	}

	// The gate passes at a floor the data meets and fails at one it cannot:
	// the slow trace's spans cover well under 100% of its wall time.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-min-attrib", "0.999", path}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("unattributable tail passed the 0.999 gate (exit %d)", code)
	}
	if !strings.Contains(stderr.String(), "below floor") {
		t.Errorf("gate failure not reported:\n%s", stderr.String())
	}
}

func TestRunKeepFilterAndErrors(t *testing.T) {
	path := writeSpans(t)
	var stdout, stderr bytes.Buffer
	// One trace was kept by fault; nothing errored.
	if code := run([]string{"-keep", "fault", path}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("fault filter: exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "1 traces") {
		t.Errorf("fault filter kept wrong count:\n%s", stdout.String())
	}
	if code := run([]string{"-keep", "error", path}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("empty filter result: exit %d, want 1", code)
	}
	if code := run(nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/spans.jsonl"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
