// Command sgdspan analyzes request-level span traces (internal/span JSONL,
// exported by sgdserve -spans or an in-process tracer): where did the p99
// go? It prints the per-span attribution table (p50/p99/max/total per span
// name), the tail-attribution verdict — what fraction of p99+ request wall
// time is covered by named spans, with the unattributed remainder reported
// explicitly — and critical-path waterfalls for the worst-N traces.
//
// Usage:
//
//	sgdspan [-top 12] [-worst 3] [-keep fault] [-min-attrib 0.95] [-json] spans.jsonl [more.jsonl...]
//
// Pass "-" to read from stdin. With -min-attrib the exit status becomes a
// gate: nonzero when tail attribution falls below the floor, which is how
// the span-smoke CI job asserts the serve path stays explainable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sgdspan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		top       = fs.Int("top", 12, "span names to show in the attribution table")
		worst     = fs.Int("worst", 3, "worst-N traces to render as waterfalls (0 = none)")
		keep      = fs.String("keep", "", "only analyze traces kept for this reason (head, slow, fault, error)")
		minAttrib = fs.Float64("min-attrib", 0, "fail (exit 1) when p99 tail attribution is below this fraction")
		jsonOut   = fs.Bool("json", false, "emit the analysis as JSON instead of tables")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sgdspan [flags] spans.jsonl [more.jsonl...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	var traces []span.TraceRec
	for _, path := range fs.Args() {
		var recs []span.TraceRec
		var err error
		if path == "-" {
			recs, err = span.Read(stdin)
		} else {
			recs, err = span.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(stderr, "sgdspan: %v\n", err)
			return 1
		}
		traces = append(traces, recs...)
	}
	if *keep != "" {
		filtered := traces[:0]
		for _, tr := range traces {
			if tr.Keep == *keep {
				filtered = append(filtered, tr)
			}
		}
		traces = filtered
	}
	if len(traces) == 0 {
		fmt.Fprintln(stderr, "sgdspan: no traces after filters")
		return 1
	}

	a := span.Analyze(traces)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			fmt.Fprintf(stderr, "sgdspan: %v\n", err)
			return 1
		}
	} else {
		a.WriteSummary(stdout, *top)
		if *worst > 0 {
			idx := make([]int, len(traces))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(i, j int) bool { return traces[idx[i]].DurUS > traces[idx[j]].DurUS })
			n := *worst
			if n > len(idx) {
				n = len(idx)
			}
			fmt.Fprintf(stdout, "\nworst %d traces:\n", n)
			for _, i := range idx[:n] {
				span.WriteWaterfall(stdout, &traces[i])
			}
		}
	}
	if *minAttrib > 0 && a.Tail.Attributed < *minAttrib {
		fmt.Fprintf(stderr, "sgdspan: p99 tail attribution %.3f below floor %.3f (%.1fµs unattributed)\n",
			a.Tail.Attributed, *minAttrib, a.Tail.UnattributedUS)
		return 1
	}
	return 0
}
